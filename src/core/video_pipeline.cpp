#include "core/video_pipeline.h"

#include <memory>
#include <string>
#include <vector>

#include "hw/devices.h"
#include "metrics/histogram.h"
#include "serving/batcher.h"
#include "sim/channel.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace serve::core {

namespace {

using metrics::Stage;
using sim::seconds;
using sim::Time;

struct Clip {
  Clip(sim::Simulator& sim, std::uint64_t id_, int frames)
      : id(id_), remaining(frames), arrival(sim.now()), done(sim) {}
  std::uint64_t id;
  int remaining;
  Time arrival;
  metrics::StageTimes stages{};
  trace::SpanContext ctx{};  ///< causal root (zero when untraced/unsampled)
  sim::Event done;
};

using ClipPtr = std::shared_ptr<Clip>;

struct FrameJob {
  ClipPtr clip;
  int index = 0;
};

struct Pipeline {
  Pipeline(sim::Simulator& sim_, const VideoPipelineSpec& spec_)
      : sim(sim_),
        spec(spec_),
        platform(sim_, {.calib = spec_.calib, .gpu_count = 1}),
        clips_in(sim_, std::numeric_limits<std::size_t>::max(), "clips"),
        frame_batcher(sim_, {.dynamic = true, .max_batch = spec_.model.max_batch}),
        sampler(spec_.trace_sampler) {}

  sim::Simulator& sim;
  const VideoPipelineSpec& spec;
  hw::Platform platform;
  sim::Channel<ClipPtr> clips_in;
  serving::Batcher<FrameJob> frame_batcher;
  trace::TraceSampler sampler;

  bool measuring = false;
  std::uint64_t clips_done = 0;
  std::uint64_t frames_done = 0;
  metrics::Histogram latency;
  metrics::Breakdown breakdown;
  std::uint64_t next_clip_id = 1;
  bool stopping = false;

  /// Pixels that must pass through the decoder to extract the samples.
  [[nodiscard]] double decode_pixels() const {
    const auto per_frame = static_cast<double>(spec.clip.frame_pixels());
    if (spec.sampling == SamplingMode::kDecodeAll) {
      return per_frame * static_cast<double>(spec.clip.total_frames());
    }
    // Keyframe seek: the decoder reconstructs roughly two frames (keyframe +
    // target) per sample.
    return per_frame * 2.0 * spec.clip.sampled_frames;
  }

  /// Records a span under the clip's context (no-op without a tracer; the
  /// tracer itself skips unsampled contexts).
  void span(const Clip& clip, std::string name, Time begin, Time end, sim::SpanArgs args = {}) {
    if (spec.tracer != nullptr && clip.ctx.valid()) {
      spec.tracer->child_span(clip.ctx, "clip." + std::to_string(clip.id), std::move(name),
                              begin, end, std::move(args));
    }
  }

  void finalize(Clip& clip, Time batch_span) {
    clip.stages[Stage::kInference] += sim::to_seconds(batch_span);
    const Time lat = sim.now() - clip.arrival;
    const double other = sim::to_seconds(lat) - clip.stages.total();
    if (other > 0.0) clip.stages[Stage::kQueue] += other;
    if (measuring) {
      ++clips_done;
      frames_done += static_cast<std::uint64_t>(spec.clip.sampled_frames);
      latency.add(sim::to_seconds(lat));
      breakdown.add(clip.stages);
    }
    if (spec.tracer != nullptr && clip.ctx.valid()) {
      sim::SpanArgs args;
      if (!spec.trace_label.empty()) args.emplace_back("run", spec.trace_label);
      args.emplace_back("clip_id", std::to_string(clip.id));
      spec.tracer->record(clip.ctx, "clip." + std::to_string(clip.id), "clip", clip.arrival,
                          sim.now(), std::move(args));
    }
    clip.done.set();
  }
};

sim::Process clip_client(Pipeline& p) {
  while (!p.stopping) {
    auto clip =
        std::make_shared<Clip>(p.sim, p.next_clip_id++, p.spec.clip.sampled_frames);
    p.clips_in.try_put(clip);
    co_await clip->done.wait();
  }
}

/// Stage 1: ingest + video decode, then emit one FrameJob per sampled frame.
sim::Process decode_loop(Pipeline& p) {
  auto& cpu = p.platform.cpu();
  auto& gpu = p.platform.gpu(0);
  const auto& calib = p.spec.calib;
  while (true) {
    auto got = co_await p.clips_in.get();
    if (!got) break;
    ClipPtr clip = std::move(*got);
    // Originate the clip's causal trace; the sampling fate derives from the
    // clip id alone, so same-seed runs trace the same clips.
    if (p.spec.tracer != nullptr) {
      clip->ctx = p.spec.tracer->begin_trace(p.sampler.sample(clip->id));
      // Closed-loop clips queue between arrival and decode pickup; cover it
      // so the wait does not surface as unattributed root self time.
      if (p.sim.now() > clip->arrival) {
        p.span(*clip, "queue", clip->arrival, p.sim.now(), {{"blame", "decode-pickup"}});
      }
    }

    // Ingest the compressed clip on a host core.
    {
      const Time t0 = p.sim.now();
      auto core = co_await cpu.cores().acquire();
      clip->stages[Stage::kQueue] += sim::to_seconds(p.sim.now() - t0);
      if (p.sim.now() > t0) p.span(*clip, "queue", t0, p.sim.now(), {{"blame", "host-core"}});
      const Time i0 = p.sim.now();
      co_await p.sim.wait(seconds(cpu.ingest_seconds()));
      clip->stages[Stage::kIngest] += cpu.ingest_seconds();
      p.span(*clip, "ingest", i0, p.sim.now());
    }

    const double pixels = p.decode_pixels();
    if (p.spec.decode == VideoDecodeDevice::kCpu) {
      const Time t0 = p.sim.now();
      auto worker = co_await cpu.preproc_workers().acquire();
      clip->stages[Stage::kQueue] += sim::to_seconds(p.sim.now() - t0);
      if (p.sim.now() > t0) {
        p.span(*clip, "queue", t0, p.sim.now(), {{"blame", "decode-worker"}});
      }
      const double d = pixels / calib.cpu.video_decode_pix_per_s;
      const Time d0 = p.sim.now();
      co_await p.sim.wait(seconds(d));
      clip->stages[Stage::kPreprocess] += d;
      p.span(*clip, "preprocess", d0, p.sim.now(), {{"op", "cpu-decode"}});
    } else {
      // Ship the compressed stream over PCIe, then decode on NVDEC.
      {
        const std::int64_t bytes = p.spec.clip.compressed_bytes();
        const Time t0 = p.sim.now();
        {
          auto host = co_await p.platform.host_link().acquire();
          co_await p.sim.wait(seconds(p.platform.host_link_seconds(bytes)));
        }
        {
          auto copy = co_await gpu.copy_h2d().acquire();
          co_await p.sim.wait(seconds(gpu.link_seconds(bytes)));
        }
        clip->stages[Stage::kTransfer] += sim::to_seconds(p.sim.now() - t0);
        p.span(*clip, "transfer", t0, p.sim.now());
      }
      const Time t0 = p.sim.now();
      auto dec = co_await gpu.nvdec().acquire();
      clip->stages[Stage::kQueue] += sim::to_seconds(p.sim.now() - t0);
      if (p.sim.now() > t0) p.span(*clip, "queue", t0, p.sim.now(), {{"blame", "nvdec"}});
      const double d = calib.gpu.nvdec_clip_init_s + pixels / calib.gpu.nvdec_pix_per_s;
      const Time d0 = p.sim.now();
      co_await p.sim.wait(seconds(d));
      clip->stages[Stage::kPreprocess] += d;
      p.span(*clip, "preprocess", d0, p.sim.now(), {{"op", "nvdec-decode"}});
    }

    for (int i = 0; i < p.spec.clip.sampled_frames; ++i) {
      p.frame_batcher.input().try_put(FrameJob{clip, i});
    }
  }
  p.frame_batcher.input().close();
}

/// Stage 2: per-frame resize/normalize + batched classification.
sim::Process classify_loop(Pipeline& p) {
  auto& gpu = p.platform.gpu(0);
  const auto& calib = p.spec.calib;
  while (true) {
    std::vector<FrameJob> batch;
    {
      sim::Event ready{p.sim};
      p.sim.spawn(p.frame_batcher.collect_into(batch, ready));
      co_await ready.wait();
    }
    if (batch.empty()) break;
    const auto b = static_cast<int>(batch.size());
    // Frame preprocessing (resize to the network input + normalize) on the
    // GPU preprocessing pipelines; decoded frames are already on-device for
    // NVDEC, or cross PCIe for CPU decode — charge the batch either way.
    {
      auto pipe = co_await gpu.preproc().acquire();
      const double resize =
          static_cast<double>(p.spec.clip.frame_pixels()) / calib.gpu.gpu_resize_pix_per_s;
      const double pre = calib.gpu.dali_batch_fixed_s + b * resize;
      const Time p0 = p.sim.now();
      co_await p.sim.wait(seconds(pre));
      for (auto& f : batch) {
        f.clip->stages[Stage::kPreprocess] += pre;
        p.span(*f.clip, "preprocess", p0, p.sim.now(), {{"op", "frame-resize"}});
      }
    }
    const Time t0 = p.sim.now();
    auto engine = co_await gpu.compute().acquire();
    const double ct = gpu.inference_batch_seconds(p.spec.model.flops(), b, 1.0, true);
    const Time c0 = p.sim.now();
    co_await p.sim.wait(seconds(ct));
    engine.release();
    const Time span = p.sim.now() - t0;
    const std::string batch_blame =
        "classify-batch-formation batch=" + std::to_string(p.frame_batcher.batches_formed()) +
        " size=" + std::to_string(b);
    for (auto& f : batch) {
      if (c0 > t0) p.span(*f.clip, "queue", t0, c0, {{"blame", batch_blame}});
      p.span(*f.clip, "inference", c0, p.sim.now(),
             {{"frame", std::to_string(f.index)}});
      if (--f.clip->remaining == 0) p.finalize(*f.clip, span);
    }
  }
}

}  // namespace

VideoPipelineResult run_video_pipeline(const VideoPipelineSpec& spec) {
  VideoPipelineSpec resolved = spec;
  if (resolved.model.name.empty()) resolved.model = models::vit_base();
  resolved.clip.validate();

  sim::Simulator sim;
  Pipeline p{sim, resolved};
  sim.spawn(decode_loop(p));
  sim.spawn(classify_loop(p));
  for (int i = 0; i < resolved.concurrency; ++i) sim.spawn(clip_client(p));

  sim.run_until(resolved.warmup);
  p.measuring = true;
  const Time window_start = sim.now();
  sim.run_until(resolved.warmup + resolved.measure);
  const double window = sim::to_seconds(sim.now() - window_start);

  VideoPipelineResult r;
  r.clips = p.clips_done;
  r.clips_per_s = window > 0 ? static_cast<double>(p.clips_done) / window : 0.0;
  r.frames_per_s = window > 0 ? static_cast<double>(p.frames_done) / window : 0.0;
  r.mean_latency_s = p.latency.mean();
  r.p99_latency_s = p.latency.p99();
  r.breakdown = p.breakdown;

  p.stopping = true;
  sim.run();
  p.clips_in.close();
  sim.run();
  return r;
}

}  // namespace serve::core
