#include "core/video_pipeline.h"

#include <memory>
#include <vector>

#include "hw/devices.h"
#include "metrics/histogram.h"
#include "serving/batcher.h"
#include "sim/channel.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace serve::core {

namespace {

using metrics::Stage;
using sim::seconds;
using sim::Time;

struct Clip {
  Clip(sim::Simulator& sim, std::uint64_t id_, int frames)
      : id(id_), remaining(frames), arrival(sim.now()), done(sim) {}
  std::uint64_t id;
  int remaining;
  Time arrival;
  metrics::StageTimes stages{};
  sim::Event done;
};

using ClipPtr = std::shared_ptr<Clip>;

struct FrameJob {
  ClipPtr clip;
  int index = 0;
};

struct Pipeline {
  Pipeline(sim::Simulator& sim_, const VideoPipelineSpec& spec_)
      : sim(sim_),
        spec(spec_),
        platform(sim_, {.calib = spec_.calib, .gpu_count = 1}),
        clips_in(sim_, std::numeric_limits<std::size_t>::max(), "clips"),
        frame_batcher(sim_, {.dynamic = true, .max_batch = spec_.model.max_batch}) {}

  sim::Simulator& sim;
  const VideoPipelineSpec& spec;
  hw::Platform platform;
  sim::Channel<ClipPtr> clips_in;
  serving::Batcher<FrameJob> frame_batcher;

  bool measuring = false;
  std::uint64_t clips_done = 0;
  std::uint64_t frames_done = 0;
  metrics::Histogram latency;
  metrics::Breakdown breakdown;
  std::uint64_t next_clip_id = 1;
  bool stopping = false;

  /// Pixels that must pass through the decoder to extract the samples.
  [[nodiscard]] double decode_pixels() const {
    const auto per_frame = static_cast<double>(spec.clip.frame_pixels());
    if (spec.sampling == SamplingMode::kDecodeAll) {
      return per_frame * static_cast<double>(spec.clip.total_frames());
    }
    // Keyframe seek: the decoder reconstructs roughly two frames (keyframe +
    // target) per sample.
    return per_frame * 2.0 * spec.clip.sampled_frames;
  }

  void finalize(Clip& clip, Time batch_span) {
    clip.stages[Stage::kInference] += sim::to_seconds(batch_span);
    const Time lat = sim.now() - clip.arrival;
    const double other = sim::to_seconds(lat) - clip.stages.total();
    if (other > 0.0) clip.stages[Stage::kQueue] += other;
    if (measuring) {
      ++clips_done;
      frames_done += static_cast<std::uint64_t>(spec.clip.sampled_frames);
      latency.add(sim::to_seconds(lat));
      breakdown.add(clip.stages);
    }
    clip.done.set();
  }
};

sim::Process clip_client(Pipeline& p) {
  while (!p.stopping) {
    auto clip =
        std::make_shared<Clip>(p.sim, p.next_clip_id++, p.spec.clip.sampled_frames);
    p.clips_in.try_put(clip);
    co_await clip->done.wait();
  }
}

/// Stage 1: ingest + video decode, then emit one FrameJob per sampled frame.
sim::Process decode_loop(Pipeline& p) {
  auto& cpu = p.platform.cpu();
  auto& gpu = p.platform.gpu(0);
  const auto& calib = p.spec.calib;
  while (true) {
    auto got = co_await p.clips_in.get();
    if (!got) break;
    ClipPtr clip = std::move(*got);

    // Ingest the compressed clip on a host core.
    {
      const Time t0 = p.sim.now();
      auto core = co_await cpu.cores().acquire();
      clip->stages[Stage::kQueue] += sim::to_seconds(p.sim.now() - t0);
      co_await p.sim.wait(seconds(cpu.ingest_seconds()));
      clip->stages[Stage::kIngest] += cpu.ingest_seconds();
    }

    const double pixels = p.decode_pixels();
    if (p.spec.decode == VideoDecodeDevice::kCpu) {
      const Time t0 = p.sim.now();
      auto worker = co_await cpu.preproc_workers().acquire();
      clip->stages[Stage::kQueue] += sim::to_seconds(p.sim.now() - t0);
      const double d = pixels / calib.cpu.video_decode_pix_per_s;
      co_await p.sim.wait(seconds(d));
      clip->stages[Stage::kPreprocess] += d;
    } else {
      // Ship the compressed stream over PCIe, then decode on NVDEC.
      {
        const std::int64_t bytes = p.spec.clip.compressed_bytes();
        const Time t0 = p.sim.now();
        {
          auto host = co_await p.platform.host_link().acquire();
          co_await p.sim.wait(seconds(p.platform.host_link_seconds(bytes)));
        }
        {
          auto copy = co_await gpu.copy_h2d().acquire();
          co_await p.sim.wait(seconds(gpu.link_seconds(bytes)));
        }
        clip->stages[Stage::kTransfer] += sim::to_seconds(p.sim.now() - t0);
      }
      const Time t0 = p.sim.now();
      auto dec = co_await gpu.nvdec().acquire();
      clip->stages[Stage::kQueue] += sim::to_seconds(p.sim.now() - t0);
      const double d = calib.gpu.nvdec_clip_init_s + pixels / calib.gpu.nvdec_pix_per_s;
      co_await p.sim.wait(seconds(d));
      clip->stages[Stage::kPreprocess] += d;
    }

    for (int i = 0; i < p.spec.clip.sampled_frames; ++i) {
      p.frame_batcher.input().try_put(FrameJob{clip, i});
    }
  }
  p.frame_batcher.input().close();
}

/// Stage 2: per-frame resize/normalize + batched classification.
sim::Process classify_loop(Pipeline& p) {
  auto& gpu = p.platform.gpu(0);
  const auto& calib = p.spec.calib;
  while (true) {
    std::vector<FrameJob> batch;
    {
      sim::Event ready{p.sim};
      p.sim.spawn(p.frame_batcher.collect_into(batch, ready));
      co_await ready.wait();
    }
    if (batch.empty()) break;
    const auto b = static_cast<int>(batch.size());
    // Frame preprocessing (resize to the network input + normalize) on the
    // GPU preprocessing pipelines; decoded frames are already on-device for
    // NVDEC, or cross PCIe for CPU decode — charge the batch either way.
    {
      auto pipe = co_await gpu.preproc().acquire();
      const double resize =
          static_cast<double>(p.spec.clip.frame_pixels()) / calib.gpu.gpu_resize_pix_per_s;
      const double pre = calib.gpu.dali_batch_fixed_s + b * resize;
      co_await p.sim.wait(seconds(pre));
      for (auto& f : batch) f.clip->stages[Stage::kPreprocess] += pre;
    }
    const Time t0 = p.sim.now();
    auto engine = co_await gpu.compute().acquire();
    const double ct = gpu.inference_batch_seconds(p.spec.model.flops(), b, 1.0, true);
    co_await p.sim.wait(seconds(ct));
    engine.release();
    const Time span = p.sim.now() - t0;
    for (auto& f : batch) {
      if (--f.clip->remaining == 0) p.finalize(*f.clip, span);
    }
  }
}

}  // namespace

VideoPipelineResult run_video_pipeline(const VideoPipelineSpec& spec) {
  VideoPipelineSpec resolved = spec;
  if (resolved.model.name.empty()) resolved.model = models::vit_base();
  resolved.clip.validate();

  sim::Simulator sim;
  Pipeline p{sim, resolved};
  sim.spawn(decode_loop(p));
  sim.spawn(classify_loop(p));
  for (int i = 0; i < resolved.concurrency; ++i) sim.spawn(clip_client(p));

  sim.run_until(resolved.warmup);
  p.measuring = true;
  const Time window_start = sim.now();
  sim.run_until(resolved.warmup + resolved.measure);
  const double window = sim::to_seconds(sim.now() - window_start);

  VideoPipelineResult r;
  r.clips = p.clips_done;
  r.clips_per_s = window > 0 ? static_cast<double>(p.clips_done) / window : 0.0;
  r.frames_per_s = window > 0 ? static_cast<double>(p.frames_done) / window : 0.0;
  r.mean_latency_s = p.latency.mean();
  r.p99_latency_s = p.latency.p99();
  r.breakdown = p.breakdown;

  p.stopping = true;
  sim.run();
  p.clips_in.close();
  sim.run();
  return r;
}

}  // namespace serve::core
