// Multi-DNN face identification pipeline (paper Section 4.7, Figs. 10-11).
//
// Stage 1 detects faces per video frame (Faster R-CNN); stage 2 identifies
// each detected face (FaceNet). One frame fans out to `faces_per_frame`
// stage-2 invocations, so the stages run at different rates and are either
// decoupled by a message broker (Kafka / Redis) or fused into one process.
#pragma once

#include <cstdint>
#include <string>

#include "hw/calibration.h"
#include "hw/image_spec.h"
#include "metrics/breakdown.h"
#include "sim/time.h"
#include "trace/causal.h"
#include "trace/span_context.h"

namespace serve::core {

enum class BrokerKind : std::uint8_t { kKafka, kRedis, kFused };

[[nodiscard]] constexpr std::string_view broker_kind_name(BrokerKind k) noexcept {
  switch (k) {
    case BrokerKind::kKafka: return "kafka";
    case BrokerKind::kRedis: return "redis";
    case BrokerKind::kFused: return "fused";
  }
  return "?";
}

struct FacePipelineSpec {
  BrokerKind broker = BrokerKind::kRedis;
  int faces_per_frame = 5;
  bool stochastic_faces = false;  ///< Poisson(faces_per_frame) when true
  int concurrency = 8;            ///< closed-loop frames in flight
  int id_max_batch = 64;          ///< identification dynamic-batch limit
  hw::ImageSpec frame_image = hw::kMediumImage;
  hw::Calibration calib = hw::default_calibration();
  sim::Time warmup = sim::seconds(2.0);
  sim::Time measure = sim::seconds(20.0);
  std::uint64_t seed = 7;

  /// Optional causal tracer (recorder already attached): sampled frames then
  /// originate traces whose spans cover detection, the broker publish +
  /// delivery hop (recorded by SimBroker with parent links across the hop),
  /// and batched identification — the cascade is one reconstructable tree.
  trace::CausalTracer* tracer = nullptr;
  trace::SamplerOptions trace_sampler{};  ///< which frames get traced
  std::string trace_label{};              ///< "run" arg on frame root spans
};

struct FacePipelineResult {
  double frames_per_s = 0.0;
  double faces_per_s = 0.0;
  double mean_latency_s = 0.0;  ///< frame arrival -> last face identified
  double p99_latency_s = 0.0;
  std::uint64_t frames = 0;
  metrics::Breakdown breakdown{};  ///< per-frame stage decomposition

  /// Fraction of frame latency spent in the message broker (the paper's
  /// "Kafka taking 71% and Redis 6% of the total latency").
  [[nodiscard]] double broker_share() const noexcept {
    return breakdown.share(metrics::Stage::kBroker);
  }
};

/// Runs the two-DNN pipeline in virtual time and reports Fig. 11 metrics.
[[nodiscard]] FacePipelineResult run_face_pipeline(const FacePipelineSpec& spec);

}  // namespace serve::core
