#include "core/experiment.h"

#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string_view>

#include "broker/broker.h"
#include "hw/tracing.h"

namespace serve::core {

namespace {

void reset_platform_stats(hw::Platform& platform) {
  platform.cpu().cores().reset_stats();
  platform.cpu().preproc_workers().reset_stats();
  platform.host_link().reset_stats();
  for (std::size_t i = 0; i < platform.gpu_count(); ++i) {
    auto& g = platform.gpu(i);
    g.compute().reset_stats();
    g.preproc().reset_stats();
    g.copy_h2d().reset_stats();
    g.copy_d2h().reset_stats();
    g.stall().reset_stats();
  }
}

std::uint64_t total_evictions(hw::Platform& platform) {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < platform.gpu_count(); ++i) n += platform.gpu(i).stager().evictions();
  return n;
}

}  // namespace

namespace {

/// Shared warmup/measure/drain skeleton for closed- and open-loop runs.
template <typename Clients>
ExperimentResult run_with_clients(const ExperimentSpec& spec, hw::Platform& platform,
                                  serving::InferenceServer& server, Clients& clients) {
  auto& sim = platform.sim();
  if (spec.recorder != nullptr) spec.recorder->start(sim);
  clients.start();

  // Warmup: fill queues and reach steady state, then reset all statistics.
  sim.run_until(spec.warmup);
  server.stats().begin();
  reset_platform_stats(platform);
  const std::uint64_t evictions_before = total_evictions(platform);
  const auto* cache = server.ingress_cache();
  const std::uint64_t cache_evictions_before = cache != nullptr ? cache->evictions() : 0;
  const sim::Time window_start = sim.now();

  sim.run_until(spec.warmup + spec.measure);
  const sim::Time window_end = sim.now();

  ExperimentResult r;
  const auto& stats = server.stats();
  r.throughput_rps = stats.throughput();
  r.completed = stats.completed();
  r.mean_latency_s = stats.latency().mean();
  r.p50_latency_s = stats.latency().p50();
  r.p99_latency_s = stats.latency().p99();
  r.mean_batch = stats.batch_sizes().mean();
  r.breakdown = stats.breakdown();
  r.energy = hw::measure_energy(platform, window_start, window_end);
  r.gpu_evictions = total_evictions(platform) - evictions_before;
  r.cache_tensor_hits = stats.cache_tensor_hits();
  r.cache_image_hits = stats.cache_image_hits();
  r.cache_hit_rate = stats.cache_hit_rate();
  if (cache != nullptr) r.cache_evictions = cache->evictions() - cache_evictions_before;
  r.dropped = stats.dropped();
  r.failed = stats.failed();
  r.rejected = stats.rejected();
  r.breaker_opens = stats.breaker_opens();
  r.degraded = stats.degraded();
  r.broker_failovers = stats.broker_failovers();
  r.client_retries = clients.retries();
  r.client_timeouts = clients.timeouts();

  // Stop sampling at the window edge: the drain below runs the simulator
  // dry, and a still-armed recorder would re-schedule itself forever.
  if (spec.recorder != nullptr) spec.recorder->stop();

  // Drain: stop the clients, let in-flight requests complete, close the
  // server so scheduler processes exit cleanly.
  clients.stop();
  sim.run();
  server.shutdown();
  sim.run();

  if (auto* audit = server.auditor()) {
    r.audit_violations = audit->violation_count();
    r.audit_report = audit->report();
  }
  // The triggered-capture binding points into the auditor, which dies with
  // the server when this frame unwinds; the engine must not outlive it armed.
  if (spec.alerts != nullptr) spec.alerts->release_triggered_sampler();
  // Callback instruments capture the platform/server/clients by reference;
  // convert them to plain values while everything is still alive so the
  // registry can be read (and exported) after this stack frame unwinds.
  if (spec.registry != nullptr) spec.registry->freeze_callbacks();
  return r;
}

/// Per-request spans come from the auditor; stream them into spec.trace
/// alongside the device counters attach_tracer already records. With a
/// causal tracer the auditor also originates SpanContexts and the recorder's
/// memory-bound accounting is surfaced through the telemetry registry.
void wire_audit_trace(const ExperimentSpec& spec, serving::InferenceServer& server) {
  if (spec.trace != nullptr && server.auditor() != nullptr) {
    server.auditor()->set_trace(spec.trace);
    if (spec.tracer != nullptr) server.auditor()->set_causal_tracer(spec.tracer);
  }
  if (spec.trace != nullptr && spec.registry != nullptr) {
    sim::TraceRecorder* rec = spec.trace;
    spec.registry->counter_fn("trace_events_recorded_total", {},
                              [rec] { return static_cast<double>(rec->event_count()); });
    spec.registry->counter_fn("trace_events_dropped_total", {},
                              [rec] { return static_cast<double>(rec->dropped_events()); });
  }
  if (spec.alerts != nullptr) {
    if (spec.trace != nullptr) spec.alerts->set_trace(spec.trace);
    // Triggered capture only makes sense when requests are being sampled at
    // all: the auditor owns the sampler that originates SpanContexts.
    if (server.auditor() != nullptr && spec.tracer != nullptr) {
      spec.alerts->set_triggered_sampler(&server.auditor()->sampler());
    }
  }
}

/// Fault-injection wiring owned by the runner: the optional result broker
/// (shares the fault plan so outages hit it), staging-budget shrink
/// transitions, and fault-window spans on the trace.
struct FaultHarness {
  std::optional<broker::SimBroker<std::uint64_t>> result_broker;

  void install(const ExperimentSpec& spec, sim::Simulator& sim, hw::Platform& platform,
               serving::InferenceServer& server) {
    if (spec.server.broker_publish.publish_results) {
      result_broker.emplace(sim, broker::redis_profile(spec.calib.broker), spec.faults,
                            spec.registry);
      server.set_result_broker(&*result_broker);
    }
    if (spec.faults == nullptr || spec.faults->empty()) return;
    if (spec.trace != nullptr) spec.faults->annotate(*spec.trace);
    if (auto* audit = server.auditor()) {
      for (const auto& w : spec.faults->windows()) {
        audit->on_fault_window(sim::fault_kind_name(w.kind), w.begin, w.end);
      }
    }
    spec.faults->schedule_transitions(
        sim, [&platform, &server](const sim::FaultWindow& w, bool begin) {
          if (w.kind != sim::FaultKind::kGpuMemoryShrink) return;
          for (std::size_t g = 0; g < platform.gpu_count(); ++g) {
            if (w.target != sim::FaultWindow::kAllTargets && static_cast<int>(g) != w.target) {
              continue;
            }
            auto& gpu = platform.gpu(g);
            const std::int64_t full = gpu.calib().staging_budget_bytes;
            const auto shrunk = std::max<std::int64_t>(
                1, static_cast<std::int64_t>(static_cast<double>(full) * w.magnitude));
            gpu.stager().set_budget(begin ? shrunk : full);
          }
          // Host memory pressure hits the ingress cache too: the same shrink
          // window scales its byte budgets, evicting LRU entries immediately.
          if (auto* cache = server.ingress_cache()) {
            cache->set_budget_scale(begin ? w.magnitude : 1.0);
          }
        });
  }
};

}  // namespace

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  sim::Simulator sim;
  hw::Platform platform{sim,
                        {.calib = spec.calib,
                         .gpu_count = spec.gpu_count,
                         .faults = spec.faults,
                         .registry = spec.registry}};
  if (spec.trace != nullptr) hw::attach_tracer(platform, *spec.trace);
  serving::InferenceServer server{platform, spec.server};
  wire_audit_trace(spec, server);
  FaultHarness harness;
  harness.install(spec, sim, platform, server);
  serving::ClosedLoopClients clients{
      server,
      {.concurrency = spec.concurrency,
       .image_source = spec.image_source ? spec.image_source : serving::fixed_image(spec.image),
       .seed = spec.seed}};
  return run_with_clients(spec, platform, server, clients);
}

ExperimentResult run_open_loop(const ExperimentSpec& spec,
                               serving::OpenLoopClients::Interarrival interarrival) {
  sim::Simulator sim;
  hw::Platform platform{sim,
                        {.calib = spec.calib,
                         .gpu_count = spec.gpu_count,
                         .faults = spec.faults,
                         .registry = spec.registry}};
  if (spec.trace != nullptr) hw::attach_tracer(platform, *spec.trace);
  serving::InferenceServer server{platform, spec.server};
  wire_audit_trace(spec, server);
  FaultHarness harness;
  harness.install(spec, sim, platform, server);
  serving::OpenLoopClients clients{
      server,
      {.interarrival = std::move(interarrival),
       .image_source = spec.image_source ? spec.image_source : serving::fixed_image(spec.image),
       .seed = spec.seed}};
  return run_with_clients(spec, platform, server, clients);
}

ExperimentResult run_zero_load(ExperimentSpec spec) {
  spec.concurrency = 1;
  // One request at a time: a modest window gives thousands of samples.
  if (spec.measure > sim::seconds(5.0)) spec.measure = sim::seconds(5.0);
  return run_experiment(spec);
}

void HarnessOptions::apply(ExperimentSpec& spec, sim::TraceRecorder& trace,
                           trace::CausalTracer* tracer) const {
  if (auditing()) spec.server.audit = true;
  if (tracing()) {
    spec.trace = &trace;
    if (trace_max_events > 0) trace.set_max_events(trace_max_events);
    if (tracer != nullptr) {
      tracer->set_recorder(&trace);
      spec.tracer = tracer;
    }
  }
}

HarnessOptions parse_harness_options(int argc, const char* const* argv) {
  HarnessOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--audit") {
      opts.audit = true;
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) throw std::invalid_argument("--trace-out requires a file path");
      opts.trace_out = argv[++i];
    } else if (arg == "--trace-max-events") {
      if (i + 1 >= argc) throw std::invalid_argument("--trace-max-events requires a count");
      const std::string v = argv[++i];
      std::size_t pos = 0;
      unsigned long long n = 0;
      try {
        n = std::stoull(v, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos != v.size() || n == 0) {
        throw std::invalid_argument("--trace-max-events needs a positive integer, got '" + v + "'");
      }
      opts.trace_max_events = static_cast<std::size_t>(n);
    } else {
      throw std::invalid_argument(
          "unknown flag '" + std::string(arg) +
          "' (supported: --audit, --trace-out <path>, --trace-max-events <n>)");
    }
  }
  return opts;
}

std::uint64_t report_audit(const ExperimentResult& r, const std::string& label) {
  if (r.audit_violations == 0) return 0;
  std::cerr << "AUDIT FAILED [" << label << "]: " << r.audit_violations << " violation(s)\n";
  for (const auto& line : r.audit_report) std::cerr << "  " << line << "\n";
  return r.audit_violations;
}

bool finish_harness(const HarnessOptions& opts, const sim::TraceRecorder& trace,
                    std::uint64_t total_violations) {
  bool trace_ok = true;
  if (opts.tracing()) {
    std::ofstream out{opts.trace_out};
    if (out) {
      trace.write_chrome_json(out);
      std::cerr << "# trace: " << opts.trace_out << " (" << trace.span_count() << " spans, "
                << trace.counter_count() << " counter samples";
      if (trace.dropped_events() > 0) {
        std::cerr << ", " << trace.dropped_events() << " events dropped at the "
                  << trace.max_events() << "-event cap";
      }
      std::cerr << ")\n";
    } else {
      // The sweep already ran; losing the trace should not look like a crash.
      std::cerr << "error: cannot open trace output " << opts.trace_out << '\n';
      trace_ok = false;
    }
  }
  if (opts.auditing()) {
    std::cerr << "# audit: "
              << (total_violations == 0
                      ? "clean (conservation, hygiene, monotonicity all hold)"
                      : std::to_string(total_violations) + " violation(s)")
              << "\n";
  }
  return trace_ok && total_violations == 0;
}

}  // namespace serve::core
