#include "core/experiment.h"

#include "hw/tracing.h"

namespace serve::core {

namespace {

void reset_platform_stats(hw::Platform& platform) {
  platform.cpu().cores().reset_stats();
  platform.cpu().preproc_workers().reset_stats();
  platform.host_link().reset_stats();
  for (std::size_t i = 0; i < platform.gpu_count(); ++i) {
    auto& g = platform.gpu(i);
    g.compute().reset_stats();
    g.preproc().reset_stats();
    g.copy_h2d().reset_stats();
    g.copy_d2h().reset_stats();
    g.stall().reset_stats();
  }
}

std::uint64_t total_evictions(hw::Platform& platform) {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < platform.gpu_count(); ++i) n += platform.gpu(i).stager().evictions();
  return n;
}

}  // namespace

namespace {

/// Shared warmup/measure/drain skeleton for closed- and open-loop runs.
template <typename Clients>
ExperimentResult run_with_clients(const ExperimentSpec& spec, hw::Platform& platform,
                                  serving::InferenceServer& server, Clients& clients) {
  auto& sim = platform.sim();
  clients.start();

  // Warmup: fill queues and reach steady state, then reset all statistics.
  sim.run_until(spec.warmup);
  server.stats().begin();
  reset_platform_stats(platform);
  const std::uint64_t evictions_before = total_evictions(platform);
  const sim::Time window_start = sim.now();

  sim.run_until(spec.warmup + spec.measure);
  const sim::Time window_end = sim.now();

  ExperimentResult r;
  const auto& stats = server.stats();
  r.throughput_rps = stats.throughput();
  r.completed = stats.completed();
  r.mean_latency_s = stats.latency().mean();
  r.p50_latency_s = stats.latency().p50();
  r.p99_latency_s = stats.latency().p99();
  r.mean_batch = stats.batch_sizes().mean();
  r.breakdown = stats.breakdown();
  r.energy = hw::measure_energy(platform, window_start, window_end);
  r.gpu_evictions = total_evictions(platform) - evictions_before;

  // Drain: stop the clients, let in-flight requests complete, close the
  // server so scheduler processes exit cleanly.
  clients.stop();
  sim.run();
  server.shutdown();
  sim.run();
  return r;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentSpec& spec) {
  sim::Simulator sim;
  hw::Platform platform{sim, {.calib = spec.calib, .gpu_count = spec.gpu_count}};
  if (spec.trace != nullptr) hw::attach_tracer(platform, *spec.trace);
  serving::InferenceServer server{platform, spec.server};
  serving::ClosedLoopClients clients{server,
                                     {.concurrency = spec.concurrency,
                                      .image_source = serving::fixed_image(spec.image),
                                      .seed = spec.seed}};
  return run_with_clients(spec, platform, server, clients);
}

ExperimentResult run_open_loop(const ExperimentSpec& spec,
                               serving::OpenLoopClients::Interarrival interarrival) {
  sim::Simulator sim;
  hw::Platform platform{sim, {.calib = spec.calib, .gpu_count = spec.gpu_count}};
  if (spec.trace != nullptr) hw::attach_tracer(platform, *spec.trace);
  serving::InferenceServer server{platform, spec.server};
  serving::OpenLoopClients clients{server,
                                   {.interarrival = std::move(interarrival),
                                    .image_source = serving::fixed_image(spec.image),
                                    .seed = spec.seed}};
  return run_with_clients(spec, platform, server, clients);
}

ExperimentResult run_zero_load(ExperimentSpec spec) {
  spec.concurrency = 1;
  // One request at a time: a modest window gives thousands of samples.
  if (spec.measure > sim::seconds(5.0)) spec.measure = sim::seconds(5.0);
  return run_experiment(spec);
}

}  // namespace serve::core
