#include "core/fleet.h"

#include <algorithm>
#include <memory>

#include "metrics/histogram.h"

namespace serve::core {

namespace {

struct Fleet {
  Fleet(sim::Simulator& sim_, const FleetSpec& spec_) : sim(sim_), spec(spec_), rng(spec_.seed) {
    for (int gpus : spec.gpus_per_node) {
      platforms.push_back(
          std::make_unique<hw::Platform>(sim, hw::Platform::Config{spec.calib, gpus}));
      servers.push_back(std::make_unique<serving::InferenceServer>(*platforms.back(), spec.server));
    }
  }

  /// Balancer dispatch (the Fig. 1 box).
  std::size_t pick_node() {
    switch (spec.policy) {
      case BalancerPolicy::kRoundRobin:
        return next_node++ % servers.size();
      case BalancerPolicy::kRandom:
        return static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(servers.size()) - 1));
      case BalancerPolicy::kLeastOutstanding: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < servers.size(); ++i) {
          if (servers[i]->in_flight() < servers[best]->in_flight()) best = i;
        }
        return best;
      }
    }
    return 0;
  }

  sim::Process client() {
    while (!stopping) {
      const std::size_t node = pick_node();
      auto req = std::make_shared<serving::Request>(sim, next_id++, spec.image);
      servers[node]->submit(req);
      co_await req->done.wait();
      if (measuring && !req->dropped) latency.add(sim::to_seconds(req->latency()));
    }
  }

  sim::Simulator& sim;
  const FleetSpec& spec;
  sim::Rng rng;
  std::vector<std::unique_ptr<hw::Platform>> platforms;
  std::vector<std::unique_ptr<serving::InferenceServer>> servers;
  std::size_t next_node = 0;
  std::uint64_t next_id = 1;
  bool stopping = false;
  bool measuring = false;
  metrics::Histogram latency;
};

}  // namespace

FleetResult run_fleet(const FleetSpec& spec) {
  if (spec.gpus_per_node.empty()) throw std::invalid_argument("run_fleet: need >= 1 node");
  sim::Simulator sim;
  Fleet fleet{sim, spec};
  for (int i = 0; i < spec.concurrency; ++i) sim.spawn(fleet.client());

  sim.run_until(spec.warmup);
  for (auto& s : fleet.servers) s->stats().begin();
  fleet.measuring = true;
  sim.run_until(spec.warmup + spec.measure);

  FleetResult r;
  for (auto& s : fleet.servers) {
    r.node_throughput_rps.push_back(s->stats().throughput());
    r.throughput_rps += s->stats().throughput();
  }
  r.mean_latency_s = fleet.latency.mean();
  r.p99_latency_s = fleet.latency.p99();

  fleet.stopping = true;
  sim.run();
  for (auto& s : fleet.servers) s->shutdown();
  return r;
}

}  // namespace serve::core
