#include "core/fleet.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "metrics/histogram.h"
#include "metrics/time_weighted.h"
#include "sim/task.h"
#include "trace/span_context.h"

namespace serve::core {

namespace {

using sim::Time;

// Balancer-side costs for fast failures: a refused connection to a crashed
// node and an error response from a gray frontend are quick, not free.
constexpr Time kConnectFailCost = 1'000'000;  // 1 ms
constexpr Time kGrayFailCost = 2'000'000;     // 2 ms

// Latency-EWMA routing signal. Failures score as kFailurePenaltyS seconds so
// a fast-failing node looks expensive rather than attractive — the trap that
// makes plain JSQ flood a gray node (its queue stays short because it sheds
// its work in milliseconds).
constexpr double kFailurePenaltyS = 0.5;
constexpr double kLatencyAlpha = 0.1;
constexpr double kLatencyPriorS = 0.02;

/// One client-visible request. Physical dispatches (primary + optional
/// hedge) share this record; the first success decides it, and when every
/// attempt has failed it is decided failed.
struct Logical {
  Logical(sim::Simulator& sim, std::uint64_t id_, Time start_)
      : id(id_), start(start_), decided(sim) {}
  std::uint64_t id;
  Time start;
  int inflight = 0;           ///< attempts launched but not yet finished
  bool hedged = false;
  Time hedge_time = 0;
  bool traced = false;
  trace::SpanContext ctx{};   ///< root context; node auditors adopt it
  const char* fail_kind = ""; ///< "crash" / "gray" / "node-error"
  std::vector<serving::RequestPtr> attempts;
  sim::Event decided;
};
using LogicalPtr = std::shared_ptr<Logical>;

struct FleetBalancer {
  struct Node {
    Node(sim::Simulator& sim, const FleetSpec& spec, int gpus)
        : platform(std::make_unique<hw::Platform>(
              sim, hw::Platform::Config{spec.calib, gpus, spec.faults})),
          server(std::make_unique<serving::InferenceServer>(*platform, node_config(spec))),
          health(spec.server.balancer.health) {}
    std::unique_ptr<hw::Platform> platform;
    std::unique_ptr<serving::InferenceServer> server;
    NodeHealth health;
    NodeHealth::State last_state = NodeHealth::State::kHealthy;
    std::uint64_t outstanding = 0;  ///< balancer-visible in-flight dispatches
    /// Time-weighted outstanding integral (alias-free per-node queue depth
    /// for the capacity plane; point samples miss fast-failing bursts).
    metrics::TimeIntegrator outstanding_integral;
    double latency_ewma_s = kLatencyPriorS;
    std::uint64_t dispatches_total = 0;
    std::uint64_t dispatches_window = 0;
    /// Requests currently on the wire to this node (for crash cancellation).
    std::vector<serving::RequestPtr> wire;
  };

  static serving::ServerConfig node_config(const FleetSpec& spec) {
    serving::ServerConfig cfg = spec.server;
    if (spec.audit) cfg.audit = true;
    return cfg;
  }

  FleetBalancer(sim::Simulator& sim_, const FleetSpec& spec_)
      : sim(sim_),
        spec(spec_),
        cfg(spec_.server.balancer),
        rng(spec_.seed),
        sampler(spec_.server.trace_sampler),
        hedge_tokens(spec_.server.balancer.hedge.budget) {
    for (int gpus : spec.gpus_per_node) {
      nodes.push_back(std::make_unique<Node>(sim, spec, gpus));
    }
    for (auto& n : nodes) {
      if (auto* audit = n->server->auditor()) {
        if (spec.trace != nullptr) audit->set_trace(spec.trace);
        if (spec.tracer != nullptr) audit->set_causal_tracer(spec.tracer);
      }
    }
  }

  [[nodiscard]] bool crash_active(int n) const noexcept {
    return spec.faults != nullptr &&
           spec.faults->active(sim::FaultKind::kNodeCrash, n, sim.now());
  }

  /// Balancer dispatch (the Fig. 1 box). Routes over the currently routable
  /// nodes; with every node unroutable it falls back to all of them (an
  /// all-ejected fleet must degrade to best-effort, not deadlock). Returns
  /// -1 only when exclusion leaves no node (single-node hedge).
  int pick_node(int exclude) {
    const int count = static_cast<int>(nodes.size());
    cand_.clear();
    for (int i = 0; i < count; ++i) {
      const bool r = nodes[static_cast<std::size_t>(i)]->health.routable(sim.now());
      sync_node_state(i);  // routable() may have advanced ejected -> half-open
      if (i != exclude && r) cand_.push_back(i);
    }
    if (cand_.empty()) {
      for (int i = 0; i < count; ++i) {
        if (i != exclude) cand_.push_back(i);
      }
    }
    if (cand_.empty()) return -1;
    switch (cfg.policy) {
      case BalancerPolicy::kRoundRobin:
        return cand_[next_rotation_++ % cand_.size()];
      case BalancerPolicy::kRandom:
        return cand_[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(cand_.size()) - 1))];
      case BalancerPolicy::kLeastOutstanding: {
        int best = cand_[0];
        for (int i : cand_) {
          if (nodes[static_cast<std::size_t>(i)]->outstanding <
              nodes[static_cast<std::size_t>(best)]->outstanding) {
            best = i;
          }
        }
        return best;
      }
      case BalancerPolicy::kPowerOfTwo: {
        if (cand_.size() == 1) return cand_[0];
        const auto ia = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(cand_.size()) - 1));
        auto ib = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(cand_.size()) - 2));
        if (ib >= ia) ++ib;
        const int a = cand_[ia], b = cand_[ib];
        const auto oa = nodes[static_cast<std::size_t>(a)]->outstanding;
        const auto ob = nodes[static_cast<std::size_t>(b)]->outstanding;
        if (oa != ob) return oa < ob ? a : b;
        return std::min(a, b);
      }
      case BalancerPolicy::kLatencyWeighted: {
        // C3-style score: expected delay = observed latency scaled by the
        // queue this dispatch would join. Failure-penalized EWMA keeps gray
        // nodes expensive even though their queues are short.
        int best = cand_[0];
        double best_score = 1e300;
        for (int i : cand_) {
          const Node& n = *nodes[static_cast<std::size_t>(i)];
          const double score =
              n.latency_ewma_s * static_cast<double>(n.outstanding + 1);
          if (score < best_score) {
            best_score = score;
            best = i;
          }
        }
        return best;
      }
    }
    return cand_[0];
  }

  void launch(const LogicalPtr& lg, int n, bool hedged) {
    ++lg->inflight;
    sim.spawn(attempt(lg, n, hedged));
  }

  /// One logical request end to end: dispatch, optional hedge at the
  /// deterministic per-request deadline, first response wins.
  sim::Task<void> serve_logical() {
    auto lg = std::make_shared<Logical>(sim, next_logical_id_++, sim.now());
    ++issued;
    if (spec.tracer != nullptr && sampler.sample(lg->id)) {
      lg->traced = true;
      lg->ctx = spec.tracer->begin_trace(true);
    }
    const int primary = pick_node(-1);
    launch(lg, primary, false);
    if (cfg.hedge.enabled) {
      const bool early = co_await lg->decided.wait_until(sim.now() + cfg.hedge.deadline);
      if (!early && !lg->decided.is_set()) {
        if (hedge_tokens >= 1.0) {
          const int second = pick_node(primary);
          if (second >= 0) {
            hedge_tokens -= 1.0;
            ++hedges;
            lg->hedged = true;
            lg->hedge_time = sim.now();
            launch(lg, second, true);
          }
        } else {
          ++hedges_denied;
        }
      }
    }
    co_await lg->decided.wait();
  }

  /// One physical dispatch to `n`: outbound link, node frontend (crash /
  /// gray fast paths), server round trip with crash-window response loss,
  /// inbound link.
  sim::Process attempt(LogicalPtr lg, int n, bool hedged) {
    Node& node = *nodes[static_cast<std::size_t>(n)];
    const bool trial =
        cfg.health.enabled && node.health.state() == NodeHealth::State::kHalfOpen;
    if (trial) node.health.begin_trial();
    ++node.outstanding;
    node.outstanding_integral.set(sim.now(), static_cast<double>(node.outstanding));
    ++node.dispatches_total;
    if (measuring) ++node.dispatches_window;
    const Time t0 = sim.now();
    bool success = false;
    bool neutral = false;  // hedge-cancelled: no health or latency signal
    const char* fail_kind = "";

    const double out_delay =
        spec.faults != nullptr ? spec.faults->partition_delay_s(n, sim.now()) : 0.0;
    if (out_delay > 0.0) co_await sim.wait(sim::seconds(out_delay));

    if (lg->decided.is_set()) {
      // The sibling won while this dispatch was still on the wire.
      neutral = true;
      fail_kind = "cancelled";
    } else if (crash_active(n)) {
      co_await sim.wait(kConnectFailCost);
      fail_kind = "crash";
    } else if (spec.faults != nullptr && !spec.faults->gray_serves(n, lg->id, sim.now())) {
      co_await sim.wait(kGrayFailCost);
      fail_kind = "gray";
    } else {
      auto req = std::make_shared<serving::Request>(sim, next_request_id_++, spec.image);
      if (lg->traced) req->trace_ctx = lg->ctx;  // node auditor adopts -> cross-node trace
      lg->attempts.push_back(req);
      node.wire.push_back(req);
      node.server->submit(req);
      bool response_lost = false;
      for (;;) {
        const Time limit =
            spec.faults != nullptr
                ? spec.faults->next_begin(sim::FaultKind::kNodeCrash, n, sim.now())
                : sim::FaultPlan::kNever;
        if (limit == sim::FaultPlan::kNever) {
          co_await req->done.wait();
          break;
        }
        if (co_await req->done.wait_until(limit)) break;
        if (crash_active(n)) {
          response_lost = true;  // the crash swallowed the in-flight response
          break;
        }
      }
      unwire(node, req);
      if (response_lost) {
        fail_kind = "crash";
      } else {
        const double in_delay =
            spec.faults != nullptr ? spec.faults->partition_delay_s(n, sim.now()) : 0.0;
        if (in_delay > 0.0) co_await sim.wait(sim::seconds(in_delay));
        if (req->dropped && req->cancel_requested) {
          if (req->cancel_reason == "hedge-cancelled") {
            neutral = true;
            fail_kind = "cancelled";
          } else {
            fail_kind = "crash";  // node-crash cancellation of queued work
          }
        } else if (!req->failed && !req->dropped) {
          success = true;
        } else {
          fail_kind = "node-error";
        }
      }
    }
    finish_attempt(lg, n, t0, success, neutral, fail_kind, trial, hedged);
  }

  static void unwire(Node& node, const serving::RequestPtr& req) {
    for (auto& r : node.wire) {
      if (r == req) {
        r = node.wire.back();
        node.wire.pop_back();
        return;
      }
    }
  }

  void finish_attempt(const LogicalPtr& lg, int n, Time t0, bool success, bool neutral,
                      const char* fail_kind, bool trial, bool hedged) {
    Node& node = *nodes[static_cast<std::size_t>(n)];
    --node.outstanding;
    node.outstanding_integral.set(sim.now(), static_cast<double>(node.outstanding));
    if (trial) node.health.end_trial();
    const Time now = sim.now();
    if (neutral) {
      ++cancelled;  // a hedge loser, drop-accounted on its node; not the node's fault
    } else {
      node.health.on_request_outcome(success, now);
      sync_node_state(n);
      const double obs = success ? sim::to_seconds(now - t0) : kFailurePenaltyS;
      node.latency_ewma_s = kLatencyAlpha * obs + (1.0 - kLatencyAlpha) * node.latency_ewma_s;
    }
    --lg->inflight;
    if (lg->decided.is_set()) return;
    if (success) {
      decide(lg, true, hedged, now);
    } else {
      if (fail_kind[0] != '\0') lg->fail_kind = fail_kind;
      if (lg->inflight == 0) decide(lg, false, hedged, now);
    }
  }

  void decide(const LogicalPtr& lg, bool success, bool by_hedge, Time now) {
    if (success) {
      ++completed;
      // Run-wide completion-charged latency sum: the λ·W side of the fleet
      // Little's-law audit, paired against the per-node outstanding
      // integrals (the L side). Charged at every success, not just inside
      // the measurement window, so interval differencing stays monotone.
      latency_sum_s += sim::to_seconds(now - lg->start);
      hedge_tokens =
          std::min(cfg.hedge.budget, hedge_tokens + cfg.hedge.budget_refill_per_success);
      if (measuring) {
        ++window_completed;
        latency.add(sim::to_seconds(now - lg->start));
      }
    } else {
      ++failed;
      const std::string_view kind = lg->fail_kind;
      if (kind == "crash") ++crash_failed;
      else if (kind == "gray") ++gray_failed;
    }
    if (lg->hedged) {
      if (by_hedge) ++hedge_wins;
      else ++hedge_losses;
      // First response wins; cancel the sibling still in flight so its node
      // drops it at the next dispatch point (drop-accounted, conserved).
      for (auto& r : lg->attempts) {
        if (r != nullptr && !r->done.is_set()) {
          r->cancel_requested = true;
          r->cancel_reason = "hedge-cancelled";
        }
      }
      if (lg->traced) {
        (void)spec.tracer->child_span(lg->ctx, "fleet.balancer",
                                      by_hedge ? "hedge-win" : "hedge-loss", lg->hedge_time,
                                      now, {{"blame", "hedge-deadline"}});
      }
    }
    if (lg->traced) {
      spec.tracer->record(
          lg->ctx, "fleet.balancer", "fleet-request", lg->start, now,
          {{"policy", std::string(balancer_policy_name(cfg.policy))},
           {"outcome", success ? std::string("ok") : std::string(lg->fail_kind)}});
    }
    lg->decided.set();
  }

  /// Periodic health probe against one node. A crashed node answers
  /// nothing (timeout); a partitioned link inflates the RTT past the
  /// timeout; a gray node answers normally — the defining property of gray
  /// failure is that watchdogs pass while real work fails.
  sim::Process probe_loop(int n) {
    Node& node = *nodes[static_cast<std::size_t>(n)];
    for (;;) {
      co_await sim.wait(cfg.health.probe_interval);
      if (stopped) co_return;
      ++probes;
      const Time t0 = sim.now();
      const double link =
          spec.faults != nullptr ? spec.faults->partition_delay_s(n, t0) : 0.0;
      const double rtt_s = cfg.health.probe_cost_s + 2.0 * link;
      const bool crashed = crash_active(n);
      const bool ok = !crashed && sim::seconds(rtt_s) <= cfg.health.probe_timeout;
      co_await sim.wait(ok ? std::max<Time>(sim::seconds(rtt_s), 1)
                           : cfg.health.probe_timeout);
      if (!ok) ++probe_failures;
      node.health.on_probe(ok, sim.now());
      sync_node_state(n);
      if (spec.trace != nullptr && !ok) {
        spec.trace->span("fleet.probes", "probe-fail node" + std::to_string(n), t0, sim.now(),
                         {{"blame", crashed ? "node-crash" : "probe-timeout"}});
      }
    }
  }

  void sync_node_state(int n) {
    Node& node = *nodes[static_cast<std::size_t>(n)];
    const NodeHealth::State s = node.health.state();
    if (s == node.last_state) return;
    node.last_state = s;
    if (spec.trace != nullptr) {
      const char* name = s == NodeHealth::State::kHealthy    ? "rejoined"
                         : s == NodeHealth::State::kEjected  ? "ejected"
                                                             : "half-open";
      spec.trace->instant("fleet.health", "node" + std::to_string(n) + " " + name, sim.now());
    }
  }

  /// A node-crash window opening drops that node's in-flight work: requests
  /// still queued inside the node are cancelled (drop-accounted by its
  /// server, so the auditor conserves them); responses already owed to the
  /// balancer are swallowed by the awaiting attempt's crash check.
  void on_fault_edge(const sim::FaultWindow& w, bool begin) {
    if (w.kind != sim::FaultKind::kNodeCrash || !begin) return;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (w.target != sim::FaultWindow::kAllTargets && static_cast<int>(i) != w.target) {
        continue;
      }
      for (auto& r : nodes[i]->wire) {
        r->cancel_requested = true;
        r->cancel_reason = "node-crash";
      }
    }
  }

  sim::Process client() {
    while (!stopped) {
      co_await serve_logical();
    }
  }

  sim::Process fire_one() { co_await serve_logical(); }

  sim::Process open_loop_gen() {
    auto gaps = workload::make_arrivals(spec.arrivals, spec.rate_rps);
    while (!stopped) {
      co_await sim.wait(std::max<Time>(gaps(rng), 1));
      if (stopped) break;
      sim.spawn(fire_one());
    }
  }

  void register_instruments() {
    metrics::Registry* reg = spec.registry;
    if (reg == nullptr) return;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      Node* n = nodes[i].get();
      const metrics::Labels labels{{"node", std::to_string(i)}};
      reg->gauge_fn("fleet_node_health_score", labels, [n] { return n->health.score(); });
      reg->gauge_fn("fleet_node_state", labels, [n] {
        switch (n->health.state()) {
          case NodeHealth::State::kHealthy: return 1.0;
          case NodeHealth::State::kHalfOpen: return 0.5;
          case NodeHealth::State::kEjected: return 0.0;
        }
        return 0.0;
      });
      reg->gauge_fn("fleet_node_outstanding", labels,
                    [n] { return static_cast<double>(n->outstanding); });
      reg->counter_fn("fleet_node_outstanding_seconds_total", labels, [n, this] {
        return n->outstanding_integral.integral_seconds(sim.now());
      });
      reg->counter_fn("fleet_node_dispatches_total", labels,
                      [n] { return static_cast<double>(n->dispatches_total); });
      reg->counter_fn("fleet_node_ejections_total", labels,
                      [n] { return static_cast<double>(n->health.ejections()); });
      reg->counter_fn("fleet_node_rejoins_total", labels,
                      [n] { return static_cast<double>(n->health.rejoins()); });
    }
    reg->counter_fn("fleet_requests_total", {{"outcome", "ok"}},
                    [this] { return static_cast<double>(completed); });
    reg->counter_fn("fleet_requests_total", {{"outcome", "fail"}},
                    [this] { return static_cast<double>(failed); });
    reg->counter_fn("fleet_probes_total", {}, [this] { return static_cast<double>(probes); });
    reg->counter_fn("fleet_probe_failures_total", {},
                    [this] { return static_cast<double>(probe_failures); });
    reg->counter_fn("fleet_hedges_total", {}, [this] { return static_cast<double>(hedges); });
    reg->counter_fn("fleet_hedge_wins_total", {},
                    [this] { return static_cast<double>(hedge_wins); });
    reg->counter_fn("fleet_hedge_losses_total", {},
                    [this] { return static_cast<double>(hedge_losses); });
    reg->counter_fn("fleet_hedges_denied_total", {},
                    [this] { return static_cast<double>(hedges_denied); });
    reg->counter_fn("fleet_cancelled_total", {},
                    [this] { return static_cast<double>(cancelled); });
    reg->counter_fn("fleet_latency_seconds_total", {}, [this] { return latency_sum_s; });
    reg->gauge_fn("fleet_hedge_tokens", {}, [this] { return hedge_tokens; });
  }

  sim::Simulator& sim;
  const FleetSpec& spec;
  const serving::FleetBalancerConfig& cfg;
  sim::Rng rng;
  trace::TraceSampler sampler;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<int> cand_;  ///< pick_node scratch (no per-dispatch allocation)
  std::size_t next_rotation_ = 0;
  std::uint64_t next_logical_id_ = 1;
  std::uint64_t next_request_id_ = 1;
  bool stopped = false;
  bool measuring = false;
  metrics::Histogram latency;
  double hedge_tokens;

  // Run-wide logical accounting (see FleetResult).
  std::uint64_t issued = 0, completed = 0, failed = 0;
  std::uint64_t crash_failed = 0, gray_failed = 0;
  std::uint64_t hedges = 0, hedge_wins = 0, hedge_losses = 0, hedges_denied = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t probes = 0, probe_failures = 0;
  std::uint64_t window_completed = 0;
  double latency_sum_s = 0.0;  ///< completion-charged; fleet_latency_seconds_total
};

}  // namespace

FleetResult run_fleet(const FleetSpec& spec) {
  if (spec.gpus_per_node.empty()) throw std::invalid_argument("run_fleet: need >= 1 node");
  if (spec.rate_rps <= 0.0 && spec.concurrency <= 0) {
    throw std::invalid_argument("run_fleet: need closed-loop clients or an offered rate");
  }
  sim::Simulator sim;
  FleetBalancer fleet{sim, spec};
  fleet.register_instruments();

  if (spec.faults != nullptr && !spec.faults->empty()) {
    if (spec.trace != nullptr) spec.faults->annotate(*spec.trace);
    if (auto* audit = fleet.nodes.front()->server->auditor()) {
      for (const auto& w : spec.faults->windows()) {
        audit->on_fault_window(sim::fault_kind_name(w.kind), w.begin, w.end);
      }
    }
    spec.faults->schedule_transitions(
        sim, [&fleet](const sim::FaultWindow& w, bool begin) { fleet.on_fault_edge(w, begin); });
  }
  if (spec.server.balancer.health.enabled) {
    for (std::size_t i = 0; i < fleet.nodes.size(); ++i) {
      sim.spawn(fleet.probe_loop(static_cast<int>(i)));
    }
  }
  if (spec.rate_rps > 0.0) {
    sim.spawn(fleet.open_loop_gen());
  } else {
    for (int i = 0; i < spec.concurrency; ++i) sim.spawn(fleet.client());
  }

  if (spec.recorder != nullptr) spec.recorder->start(sim);
  sim.run_until(spec.warmup);
  for (auto& n : fleet.nodes) n->server->stats().begin();
  fleet.measuring = true;
  sim.run_until(spec.warmup + spec.measure);
  // Stop at the window edge: the drain runs the simulator dry, and a live
  // recorder would re-schedule its tick forever.
  if (spec.recorder != nullptr) spec.recorder->stop();

  FleetResult r;
  for (auto& n : fleet.nodes) {
    r.node_throughput_rps.push_back(n->server->stats().throughput());
    r.node_dispatches.push_back(n->dispatches_window);
  }
  fleet.measuring = false;
  r.throughput_rps =
      static_cast<double>(fleet.window_completed) / sim::to_seconds(spec.measure);
  r.mean_latency_s = fleet.latency.mean();
  r.p99_latency_s = fleet.latency.p99();

  // Drain: stop the load and the probes, let every in-flight attempt reach a
  // terminal state, then close the nodes.
  fleet.stopped = true;
  sim.run();
  for (auto& n : fleet.nodes) n->server->shutdown();
  sim.run();

  r.issued = fleet.issued;
  r.completed = fleet.completed;
  r.failed = fleet.failed;
  r.crash_failed = fleet.crash_failed;
  r.gray_failed = fleet.gray_failed;
  r.hedges = fleet.hedges;
  r.hedge_wins = fleet.hedge_wins;
  r.hedge_losses = fleet.hedge_losses;
  r.hedges_denied = fleet.hedges_denied;
  r.cancelled = fleet.cancelled;
  r.probes = fleet.probes;
  r.probe_failures = fleet.probe_failures;
  for (auto& n : fleet.nodes) {
    r.ejections += n->health.ejections();
    r.rejoins += n->health.rejoins();
    if (auto* audit = n->server->auditor()) {
      r.audit_violations += audit->violation_count();
      for (auto& line : audit->report()) r.audit_report.push_back(std::move(line));
    }
  }
  if (spec.registry != nullptr) spec.registry->freeze_callbacks();
  return r;
}

std::string FleetResult::digest() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "tput=%.6f mean=%.9f p99=%.9f issued=%" PRIu64 " completed=%" PRIu64
                " failed=%" PRIu64 " crash=%" PRIu64 " gray=%" PRIu64 " hedges=%" PRIu64
                " wins=%" PRIu64 " losses=%" PRIu64 " denied=%" PRIu64 " cancelled=%" PRIu64
                " probes=%" PRIu64 " pfail=%" PRIu64 " eject=%" PRIu64 " rejoin=%" PRIu64,
                throughput_rps, mean_latency_s, p99_latency_s, issued, completed, failed,
                crash_failed, gray_failed, hedges, hedge_wins, hedge_losses, hedges_denied,
                cancelled, probes, probe_failures, ejections, rejoins);
  std::string d = buf;
  for (std::size_t i = 0; i < node_throughput_rps.size(); ++i) {
    const std::uint64_t disp = i < node_dispatches.size() ? node_dispatches[i] : 0;
    std::snprintf(buf, sizeof buf, " n%zu=%.6f/%" PRIu64, i, node_throughput_rps[i], disp);
    d += buf;
  }
  return d;
}

}  // namespace serve::core
