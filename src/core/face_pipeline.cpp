#include "core/face_pipeline.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "hw/devices.h"
#include "metrics/histogram.h"
#include "models/model_zoo.h"
#include "serving/batcher.h"
#include "sim/channel.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace serve::core {

namespace {

using metrics::Stage;
using sim::seconds;
using sim::Time;

struct Frame {
  Frame(sim::Simulator& sim, std::uint64_t id_, int faces_)
      : id(id_), faces(faces_), remaining(faces_), arrival(sim.now()), done(sim) {}

  std::uint64_t id;
  int faces;
  int remaining;
  Time arrival;
  Time publish_start = 0;   ///< detection handed faces to the broker
  Time last_delivered = 0;  ///< broker delivered the final face
  metrics::StageTimes stages{};
  trace::SpanContext ctx{};  ///< causal root (zero when untraced/unsampled)
  sim::Event done;
};

using FramePtr = std::shared_ptr<Frame>;

struct FaceMsg {
  FramePtr frame;
  int face_index = 0;
  trace::SpanContext ctx{};  ///< delivery span's context after the broker hop
  Time delivered = 0;        ///< when the broker handed this face over
};

/// Whole pipeline state bundled for the coroutine bodies.
struct Pipeline {
  Pipeline(sim::Simulator& sim_, const FacePipelineSpec& spec_)
      : sim(sim_),
        spec(spec_),
        platform(sim_, {.calib = spec_.calib, .gpu_count = 1}),
        broker(sim_, spec_.broker == BrokerKind::kKafka
                         ? broker::kafka_profile(spec_.calib.broker)
                         : broker::redis_profile(spec_.calib.broker)),
        frames_in(sim_, std::numeric_limits<std::size_t>::max(), "frames"),
        id_batcher(sim_, {.dynamic = true, .max_batch = spec_.id_max_batch}),
        rng(spec_.seed),
        sampler(spec_.trace_sampler),
        detection(models::faster_rcnn()),
        identification(models::facenet()) {
    broker.set_tracer(spec_.tracer);
  }

  sim::Simulator& sim;
  const FacePipelineSpec& spec;
  hw::Platform platform;
  broker::SimBroker<FaceMsg> broker;
  sim::Channel<FramePtr> frames_in;
  serving::Batcher<FaceMsg> id_batcher;
  sim::Rng rng;
  trace::TraceSampler sampler;
  const models::ModelDesc& detection;
  const models::ModelDesc& identification;

  // Measurement window.
  bool measuring = false;
  std::uint64_t frames_done = 0;
  std::uint64_t faces_done = 0;
  metrics::Histogram latency;
  metrics::Breakdown breakdown;
  std::uint64_t next_frame_id = 1;
  bool stopping = false;

  [[nodiscard]] int sample_faces() {
    if (!spec.stochastic_faces) return spec.faces_per_frame;
    const auto n = rng.poisson(static_cast<double>(spec.faces_per_frame));
    return n == 0 ? 1 : static_cast<int>(n);  // a frame enters only if faces exist
  }

  /// Records a span under `parent` on the frame's trace track. No-op without
  /// a tracer; the tracer itself no-ops unsampled contexts (ids still
  /// allocated, keeping id assignment scheduling-independent).
  void span(const trace::SpanContext& parent, std::uint64_t frame_id, std::string name,
            Time begin, Time end, sim::SpanArgs args = {}) {
    if (spec.tracer != nullptr && parent.valid()) {
      spec.tracer->child_span(parent, "frame." + std::to_string(frame_id), std::move(name),
                              begin, end, std::move(args));
    }
  }

  void finalize(Frame& frame, Time id_batch_span) {
    frame.stages[Stage::kInference] += sim::to_seconds(id_batch_span);
    if (spec.broker != BrokerKind::kFused) {
      frame.stages[Stage::kBroker] +=
          sim::to_seconds(frame.last_delivered - frame.publish_start);
    }
    const Time latency_ns = sim.now() - frame.arrival;
    // Whatever is not attributed to a named stage is scheduler queueing.
    const double other = sim::to_seconds(latency_ns) - frame.stages.total();
    if (other > 0.0) frame.stages[Stage::kQueue] += other;
    if (measuring) {
      ++frames_done;
      faces_done += static_cast<std::uint64_t>(frame.faces);
      latency.add(sim::to_seconds(latency_ns));
      breakdown.add(frame.stages);
    }
    if (spec.tracer != nullptr && frame.ctx.valid()) {
      sim::SpanArgs args;
      if (!spec.trace_label.empty()) args.emplace_back("run", spec.trace_label);
      args.emplace_back("frame_id", std::to_string(frame.id));
      args.emplace_back("faces", std::to_string(frame.faces));
      spec.tracer->record(frame.ctx, "frame." + std::to_string(frame.id), "frame",
                          frame.arrival, sim.now(), std::move(args));
    }
    frame.done.set();
  }
};

void charge(Frame& f, Stage s, Time dt) { f.stages[s] += sim::to_seconds(dt); }

/// Closed-loop frame source: keeps one frame outstanding per client.
sim::Process frame_client(Pipeline& p) {
  while (!p.stopping) {
    auto frame = std::make_shared<Frame>(p.sim, p.next_frame_id++, p.sample_faces());
    p.frames_in.try_put(frame);
    co_await frame->done.wait();
  }
}

/// Publishes one face message (spawned so detection is not serialized on
/// broker IO; ordering is preserved by the broker's FIFO IO pool). The
/// frame's context rides along so the broker's publish/delivery spans hang
/// off the frame's trace.
sim::Process publish_face(Pipeline& p, FaceMsg msg) {
  const trace::SpanContext ctx = msg.frame->ctx;
  co_await p.broker.publish(std::move(msg), ctx);
}

/// Stage 1: per-frame preprocessing + Faster R-CNN detection at batch 1,
/// then hand-off (broker publish or fused in-process identification).
sim::Process detection_loop(Pipeline& p) {
  auto& gpu = p.platform.gpu(0);
  while (true) {
    auto got = co_await p.frames_in.get();
    if (!got) break;
    FramePtr frame = std::move(*got);
    // Originate the frame's causal trace: the sampling fate is decided here,
    // from the frame id alone, and carried by every downstream participant.
    if (p.spec.tracer != nullptr) {
      frame->ctx = p.spec.tracer->begin_trace(p.sampler.sample(frame->id));
      // Time between frame arrival and detection pickup (closed-loop frames
      // queue here); without this span it would surface as root self time.
      if (p.sim.now() > frame->arrival) {
        p.span(frame->ctx, frame->id, "queue", frame->arrival, p.sim.now(),
               {{"blame", "detection-pickup"}});
      }
    }

    // Frame preprocessing through a GPU pipeline instance.
    {
      const Time t0 = p.sim.now();
      auto pipe = co_await gpu.preproc().acquire();
      charge(*frame, Stage::kQueue, p.sim.now() - t0);
      if (p.sim.now() > t0) {
        p.span(frame->ctx, frame->id, "queue", t0, p.sim.now(),
               {{"blame", "preproc-pipeline"}});
      }
      const double pre =
          gpu.preproc_batch_fixed_seconds() + gpu.preproc_image_seconds(p.spec.frame_image);
      const Time p0 = p.sim.now();
      co_await p.sim.wait(seconds(pre));
      charge(*frame, Stage::kPreprocess, seconds(pre));
      p.span(frame->ctx, frame->id, "preprocess", p0, p.sim.now());
    }

    // Detection (batch 1: frames flow through the detector one at a time).
    {
      const Time t0 = p.sim.now();
      auto engine = co_await gpu.compute().acquire();
      charge(*frame, Stage::kQueue, p.sim.now() - t0);
      if (p.sim.now() > t0) {
        p.span(frame->ctx, frame->id, "queue", t0, p.sim.now(), {{"blame", "engine-wait"}});
      }
      const double det = gpu.inference_batch_seconds(p.detection.flops(), 1, 1.0, false);
      const Time d0 = p.sim.now();
      co_await p.sim.wait(seconds(det));
      charge(*frame, Stage::kInference, seconds(det));
      p.span(frame->ctx, frame->id, "inference", d0, p.sim.now(), {{"model", "detection"}});
    }

    if (p.spec.broker == BrokerKind::kFused) {
      // Fused system: identify each face in-process, one invocation per
      // detected face (no cross-frame batching possible).
      Time id_total = 0;
      for (int i = 0; i < frame->faces; ++i) {
        auto engine = co_await gpu.compute().acquire();
        const double idt = gpu.inference_batch_seconds(p.identification.flops(), 1, 1.0, false);
        const Time t0 = p.sim.now();
        co_await p.sim.wait(seconds(idt));
        id_total += p.sim.now() - t0;
        p.span(frame->ctx, frame->id, "inference", t0, p.sim.now(),
               {{"model", "identification"}, {"face", std::to_string(i)}});
      }
      p.finalize(*frame, id_total);
      continue;
    }

    // Brokered system: producer/consumer synchronization bubble on the GPU
    // pipeline, then one message per face.
    {
      const Time s0 = p.sim.now();
      auto engine = co_await gpu.compute().acquire();
      co_await p.sim.wait(seconds(p.spec.calib.broker.pipeline_sync_s));
      charge(*frame, Stage::kQueue, seconds(p.spec.calib.broker.pipeline_sync_s));
      if (p.sim.now() > s0) {
        p.span(frame->ctx, frame->id, "queue", s0, p.sim.now(), {{"blame", "pipeline-sync"}});
      }
    }
    frame->publish_start = p.sim.now();
    for (int i = 0; i < frame->faces; ++i) {
      p.sim.spawn(publish_face(p, FaceMsg{frame, i}));
    }
  }
  if (p.spec.broker != BrokerKind::kFused) p.broker.close();
  p.id_batcher.input().close();
}

/// Moves delivered face messages from the broker into the identification
/// dynamic batcher.
sim::Process consume_pump(Pipeline& p) {
  while (true) {
    auto d = co_await p.broker.consume_traced();
    if (!d) break;
    d->payload.frame->last_delivered = p.sim.now();
    // Downstream identification spans parent under the delivery span, so
    // the chain detect -> publish -> deliver -> identify stays causal.
    d->payload.ctx = d->ctx;
    d->payload.delivered = p.sim.now();
    p.id_batcher.input().try_put(std::move(d->payload));
  }
}

/// Stage 2: FaceNet over dynamically batched faces (across frames).
sim::Process identification_loop(Pipeline& p) {
  auto& gpu = p.platform.gpu(0);
  while (true) {
    std::vector<FaceMsg> batch;
    {
      sim::Event ready{p.sim};
      p.sim.spawn(p.id_batcher.collect_into(batch, ready));
      co_await ready.wait();
    }
    if (batch.empty()) break;
    auto engine = co_await gpu.compute().acquire();
    const double idt = gpu.inference_batch_seconds(
        p.identification.flops(), static_cast<int>(batch.size()), 1.0, false);
    const Time t0 = p.sim.now();
    co_await p.sim.wait(seconds(idt));
    const Time span = p.sim.now() - t0;
    engine.release();
    const std::string id_blame = "id-batch-formation batch=" +
                                 std::to_string(p.id_batcher.batches_formed()) +
                                 " size=" + std::to_string(batch.size());
    for (auto& face : batch) {
      Frame& f = *face.frame;
      // Per-face wait from broker delivery to batch dispatch (batch
      // formation + engine wait), then the shared batch execution — both
      // parented under the delivery span so the cross-broker chain holds.
      if (t0 > face.delivered) {
        p.span(face.ctx, f.id, "queue", face.delivered, t0, {{"blame", id_blame}});
      }
      p.span(face.ctx, f.id, "inference", t0, p.sim.now(),
             {{"model", "identification"}, {"face", std::to_string(face.face_index)}});
      if (--f.remaining == 0) p.finalize(f, span);
    }
  }
}

}  // namespace

FacePipelineResult run_face_pipeline(const FacePipelineSpec& spec) {
  sim::Simulator sim;
  Pipeline p{sim, spec};

  sim.spawn(detection_loop(p));
  if (spec.broker != BrokerKind::kFused) {
    sim.spawn(consume_pump(p));
    sim.spawn(identification_loop(p));
  }
  for (int i = 0; i < spec.concurrency; ++i) sim.spawn(frame_client(p));

  sim.run_until(spec.warmup);
  p.measuring = true;
  const Time window_start = sim.now();
  sim.run_until(spec.warmup + spec.measure);
  const double window = sim::to_seconds(sim.now() - window_start);

  FacePipelineResult r;
  r.frames = p.frames_done;
  r.frames_per_s = window > 0 ? static_cast<double>(p.frames_done) / window : 0.0;
  r.faces_per_s = window > 0 ? static_cast<double>(p.faces_done) / window : 0.0;
  r.mean_latency_s = p.latency.mean();
  r.p99_latency_s = p.latency.p99();
  r.breakdown = p.breakdown;

  // Drain and stop.
  p.stopping = true;
  sim.run();
  p.frames_in.close();
  sim.run();
  return r;
}

}  // namespace serve::core
