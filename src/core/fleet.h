// Multi-node fleet with a health-checked load balancer (the paper's Fig. 1
// system, plus the failure domains the paper's scaling story assumes away).
//
// "A load balancer within the datacenter receives incoming requests and
// strategically distributes them among the available processing servers."
// This module stands up N serving nodes (each its own CPU+GPU platform) in
// one simulation and dispatches a shared client population across them —
// closed-loop or open-loop Poisson — under a selectable balancing policy,
// including heterogeneous fleets where nodes have different GPU counts.
//
// Beyond dispatch, the balancer is a failure-domain boundary:
//
//   - node-scoped FaultPlan windows (kNodeCrash / kNodeGrayFailure /
//     kNodePartition) act on the balancer<->node edge, not inside the node;
//   - periodic health probes per node feed an EWMA health score together
//     with balancer-observed request outcomes; unhealthy nodes are ejected,
//     trialled half-open, and rejoined (NodeHealth below);
//   - power-of-two-choices and latency-weighted policies route over the
//     currently routable nodes only;
//   - request hedging re-dispatches slow requests to a second node under a
//     gRPC-style token budget; the loser is cancelled and drop-accounted on
//     its node, so per-node auditors still conserve every request.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "workload/arrivals.h"

namespace serve::core {

// The policy enum and balancer knobs live in serving/config.h (so config
// files round-trip them); re-export the names callers have always used.
using serving::BalancerPolicy;
using serving::balancer_policy_name;

/// Per-node health state machine at the balancer: the PR 3 circuit breaker
/// lifted to fleet scope. Pure bookkeeping (no simulator dependency) so the
/// transitions are unit-testable; the balancer feeds it probe and request
/// outcomes stamped with virtual time.
class NodeHealth {
 public:
  enum class State : std::uint8_t { kHealthy, kEjected, kHalfOpen };

  explicit NodeHealth(const serving::HealthCheckPolicy& policy) : policy_(policy) {}

  /// Feeds one health-probe outcome. Consecutive failures eject fast (a
  /// crashed or partitioned node answers nothing); half-open successes count
  /// toward rejoin; a half-open failure re-ejects immediately.
  void on_probe(bool success, sim::Time now) { feed(success, now, /*is_probe=*/true); }

  /// Feeds one balancer-observed request outcome. This is what catches gray
  /// failures: the node still answers probes, but its error rate drags the
  /// EWMA score below the ejection threshold.
  void on_request_outcome(bool success, sim::Time now) {
    feed(success, now, /*is_probe=*/false);
  }

  /// May a new request be routed here now? Healthy yes; ejected no (but the
  /// eject hold expiring flips to half-open first); half-open only while
  /// trial slots remain. Does not claim a slot — the balancer calls
  /// begin_trial()/end_trial() around the dispatch it actually makes.
  [[nodiscard]] bool routable(sim::Time now) {
    if (!policy_.enabled) return true;
    advance(now);
    if (state_ == State::kHealthy) return true;
    return state_ == State::kHalfOpen && trials_in_flight_ < policy_.rejoin_probes;
  }
  void begin_trial() noexcept { ++trials_in_flight_; }
  void end_trial() noexcept {
    if (trials_in_flight_ > 0) --trials_in_flight_;
  }

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] double score() const noexcept { return score_; }
  [[nodiscard]] std::uint64_t ejections() const noexcept { return ejections_; }
  [[nodiscard]] std::uint64_t rejoins() const noexcept { return rejoins_; }

 private:
  void advance(sim::Time now) {
    if (state_ == State::kEjected && now >= eject_until_) {
      state_ = State::kHalfOpen;
      half_open_successes_ = 0;
      trials_in_flight_ = 0;
    }
  }

  void feed(bool success, sim::Time now, bool is_probe) {
    if (!policy_.enabled) return;
    advance(now);
    score_ = policy_.ewma_alpha * (success ? 1.0 : 0.0) + (1.0 - policy_.ewma_alpha) * score_;
    if (is_probe) consecutive_probe_failures_ = success ? 0 : consecutive_probe_failures_ + 1;
    switch (state_) {
      case State::kHealthy:
        if (score_ < policy_.eject_score ||
            consecutive_probe_failures_ >= policy_.eject_probe_failures) {
          eject(now);
        }
        break;
      case State::kHalfOpen:
        if (!success) {
          eject(now);
        } else if (++half_open_successes_ >= policy_.rejoin_probes) {
          state_ = State::kHealthy;
          score_ = 1.0;  // rejoin with a clean slate, like the breaker's close
          ++rejoins_;
        }
        break;
      case State::kEjected:
        break;  // outcomes of requests dispatched pre-ejection; EWMA already fed
    }
  }

  void eject(sim::Time now) {
    state_ = State::kEjected;
    eject_until_ = now + policy_.eject_duration;
    consecutive_probe_failures_ = 0;
    half_open_successes_ = 0;
    trials_in_flight_ = 0;
    ++ejections_;
  }

  serving::HealthCheckPolicy policy_{};
  State state_ = State::kHealthy;
  double score_ = 1.0;
  int consecutive_probe_failures_ = 0;
  int half_open_successes_ = 0;
  int trials_in_flight_ = 0;
  sim::Time eject_until_ = 0;
  std::uint64_t ejections_ = 0;
  std::uint64_t rejoins_ = 0;
};

struct FleetSpec {
  serving::ServerConfig server{};       ///< endpoint deployed on every node
  std::vector<int> gpus_per_node{1, 1}; ///< one entry per node (heterogeneous ok)
  hw::Calibration calib = hw::default_calibration();
  int concurrency = 512;                ///< fleet-wide closed-loop clients
  /// Open-loop offered load: when > 0, requests arrive on `arrivals` at this
  /// rate and `concurrency` is ignored — fault windows are then measured
  /// under constant offered load instead of a self-throttling client.
  double rate_rps = 0.0;
  workload::ArrivalKind arrivals = workload::ArrivalKind::kPoisson;
  hw::ImageSpec image = hw::kMediumImage;
  sim::Time warmup = sim::seconds(2.0);
  sim::Time measure = sim::seconds(10.0);
  std::uint64_t seed = 5;

  /// Optional fault schedule (must outlive the run). Node-scoped kinds act
  /// at the balancer; device kinds pass through to every node's platform.
  const sim::FaultPlan* faults = nullptr;
  /// Arm every node's RequestAuditor and aggregate violations (overrides
  /// server.audit).
  bool audit = false;
  sim::TraceRecorder* trace = nullptr;      ///< optional probe/hedge/fault spans
  trace::CausalTracer* tracer = nullptr;    ///< optional cross-node causal traces
  metrics::Registry* registry = nullptr;    ///< optional fleet-level instruments
  /// Optional flight recorder over `registry` (requires it): started before
  /// warmup, stopped at the measurement-window edge. Gives fleet runs the
  /// same per-node health/queue trajectories single-server runs record —
  /// and an obs::AlertEngine attached to it per-node alert evaluation.
  metrics::FlightRecorder* recorder = nullptr;
};

struct FleetResult {
  // Window-scoped performance (the measurement window only).
  double throughput_rps = 0.0;  ///< logical goodput: first-wins successes / s
  double mean_latency_s = 0.0;
  double p99_latency_s = 0.0;
  std::vector<double> node_throughput_rps;       ///< node-side completions / s
  std::vector<std::uint64_t> node_dispatches;    ///< balancer sends per node

  // Run-wide logical accounting (warmup + window + drain): every logical
  // request reaches exactly one terminal state.
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t crash_failed = 0;   ///< refused/lost on a crashed node
  std::uint64_t gray_failed = 0;    ///< fast-failed by a gray node frontend

  // Hedging (run-wide).
  std::uint64_t hedges = 0;         ///< secondary dispatches issued
  std::uint64_t hedge_wins = 0;     ///< logical requests decided by the hedge
  std::uint64_t hedge_losses = 0;   ///< hedged but the primary answered first
  std::uint64_t hedges_denied = 0;  ///< hedge wanted, token budget empty
  std::uint64_t cancelled = 0;      ///< losers drop-accounted on their node

  // Health checking (run-wide).
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t ejections = 0;
  std::uint64_t rejoins = 0;

  std::uint64_t audit_violations = 0;
  std::vector<std::string> audit_report{};

  /// Nodes that completed nothing during the measurement window.
  [[nodiscard]] int dead_nodes() const noexcept {
    int n = 0;
    for (double t : node_throughput_rps) n += t <= 0.0 ? 1 : 0;
    return n;
  }

  /// max/min per-node throughput — 1.0 is perfectly balanced. A fleet with a
  /// dead node reports +inf (it used to report 0.0, the "perfectly
  /// balanced" sentinel — the worst possible answer for a dead node).
  [[nodiscard]] double imbalance() const noexcept {
    if (node_throughput_rps.empty()) return 0.0;
    double lo = 1e300, hi = 0.0;
    for (double t : node_throughput_rps) {
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    return lo <= 0.0 ? std::numeric_limits<double>::infinity() : hi / lo;
  }

  /// Every logical request issued reached exactly one terminal state.
  [[nodiscard]] bool conserved() const noexcept { return issued == completed + failed; }

  /// Deterministic run fingerprint: same seed + same spec must reproduce it
  /// byte-identically.
  [[nodiscard]] std::string digest() const;
};

[[nodiscard]] FleetResult run_fleet(const FleetSpec& spec);

}  // namespace serve::core
