// Multi-node fleet with a load balancer (the paper's Fig. 1 system).
//
// "A load balancer within the datacenter receives incoming requests and
// strategically distributes them among the available processing servers."
// This module stands up N serving nodes (each its own CPU+GPU platform) in
// one simulation and dispatches a shared client population across them
// under a selectable balancing policy — including heterogeneous fleets
// where nodes have different GPU counts.
#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.h"

namespace serve::core {

enum class BalancerPolicy : std::uint8_t {
  kRoundRobin,        ///< strict rotation
  kRandom,            ///< uniform random node
  kLeastOutstanding,  ///< join-the-shortest-queue on in-flight counts
};

[[nodiscard]] constexpr std::string_view balancer_policy_name(BalancerPolicy p) noexcept {
  switch (p) {
    case BalancerPolicy::kRoundRobin: return "round-robin";
    case BalancerPolicy::kRandom: return "random";
    case BalancerPolicy::kLeastOutstanding: return "least-outstanding";
  }
  return "?";
}

struct FleetSpec {
  serving::ServerConfig server{};       ///< endpoint deployed on every node
  std::vector<int> gpus_per_node{1, 1}; ///< one entry per node (heterogeneous ok)
  BalancerPolicy policy = BalancerPolicy::kRoundRobin;
  hw::Calibration calib = hw::default_calibration();
  int concurrency = 512;                ///< fleet-wide closed-loop clients
  hw::ImageSpec image = hw::kMediumImage;
  sim::Time warmup = sim::seconds(2.0);
  sim::Time measure = sim::seconds(10.0);
  std::uint64_t seed = 5;
};

struct FleetResult {
  double throughput_rps = 0.0;  ///< fleet aggregate
  double mean_latency_s = 0.0;
  double p99_latency_s = 0.0;
  std::vector<double> node_throughput_rps;
  /// max/min per-node throughput — 1.0 is perfectly balanced.
  [[nodiscard]] double imbalance() const noexcept {
    double lo = 1e300, hi = 0.0;
    for (double t : node_throughput_rps) {
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    return node_throughput_rps.empty() || lo <= 0.0 ? 0.0 : hi / lo;
  }
};

[[nodiscard]] FleetResult run_fleet(const FleetSpec& spec);

}  // namespace serve::core
