// Server-configuration auto-tuner.
//
// The paper (Section 2.3) reports ~300 img/s from "a quick search on the
// server settings that include the number of preprocessing and inference
// processes, the maximum allowed batch size, and the concurrency per
// server". This module is that search: grid exploration over the deployment
// knobs, maximizing throughput subject to an optional tail-latency SLO.
#pragma once

#include <limits>
#include <vector>

#include "core/experiment.h"

namespace serve::core {

/// Knob grid to explore. Empty dimensions keep the spec's current value.
struct TuneSpace {
  std::vector<int> max_batches{16, 32, 64, 128};
  std::vector<int> concurrencies{64, 128, 256, 512};
  std::vector<serving::PreprocDevice> preproc_devices{serving::PreprocDevice::kCpu,
                                                      serving::PreprocDevice::kGpu};
  std::vector<int> preproc_workers{};  ///< CPU preprocessing pool sizes
  std::vector<int> instance_counts{};  ///< execution instances per GPU
};

/// Optimization target: maximize throughput subject to a p99 SLO.
struct TuneObjective {
  double p99_slo_s = std::numeric_limits<double>::infinity();
};

struct TunePoint {
  ExperimentSpec spec;
  ExperimentResult result;
  bool feasible = false;  ///< met the SLO
};

struct TuneReport {
  TunePoint best;                ///< highest-throughput feasible point
  std::vector<TunePoint> trace;  ///< every evaluated point, in search order
  [[nodiscard]] bool found_feasible() const noexcept { return best.feasible; }
};

/// Exhaustive grid search from `base` over `space`. Every run is an
/// independent deterministic simulation; `base` supplies model, image,
/// platform and measurement windows.
[[nodiscard]] TuneReport tune_server(const ExperimentSpec& base, const TuneSpace& space,
                                     const TuneObjective& objective = {});

}  // namespace serve::core
