// Real (wall-clock, thread-safe) in-memory message broker.
//
// This is the "Redis-class" substrate used by the runnable examples and
// integration tests: a bounded MPMC queue with blocking publish/consume and
// close semantics, exercising actual thread synchronization rather than the
// simulator. Single host, at-most-once delivery to one consumer per message.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "trace/span_context.h"

namespace serve::broker {

/// Message wrapper carrying a causal context across an InProcessBroker hop:
/// instantiate the broker as InProcessBroker<Traced<Msg>> and the context
/// rides with each message, exactly like SimBroker's envelopes.
template <typename T>
struct Traced {
  T payload;
  trace::SpanContext ctx{};
};

template <typename T>
class InProcessBroker {
 public:
  explicit InProcessBroker(std::size_t capacity = 1024) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("InProcessBroker: capacity must be positive");
  }

  /// Blocks while the topic is full; throws if the broker is closed.
  void publish(T msg) {
    std::unique_lock lock{mu_};
    not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) throw std::runtime_error("InProcessBroker: publish after close");
    queue_.push_back(std::move(msg));
    ++published_;
    not_empty_.notify_one();
  }

  /// Non-blocking publish; false when full.
  bool try_publish(T msg) {
    std::lock_guard lock{mu_};
    if (closed_) throw std::runtime_error("InProcessBroker: publish after close");
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(msg));
    ++published_;
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a message arrives; std::nullopt once closed and drained.
  std::optional<T> consume() {
    std::unique_lock lock{mu_};
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;  // closed and drained
    T msg = std::move(queue_.front());
    queue_.pop_front();
    ++consumed_;
    not_full_.notify_one();
    return msg;
  }

  std::optional<T> try_consume() {
    std::lock_guard lock{mu_};
    if (queue_.empty()) return std::nullopt;
    T msg = std::move(queue_.front());
    queue_.pop_front();
    ++consumed_;
    not_full_.notify_one();
    return msg;
  }

  /// Wakes all blocked publishers (error) and consumers (drain-then-null).
  void close() {
    std::lock_guard lock{mu_};
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::uint64_t published() const {
    std::lock_guard lock{mu_};
    return published_;
  }
  [[nodiscard]] std::uint64_t consumed() const {
    std::lock_guard lock{mu_};
    return consumed_;
  }
  [[nodiscard]] std::size_t depth() const {
    std::lock_guard lock{mu_};
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
  std::uint64_t published_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace serve::broker
