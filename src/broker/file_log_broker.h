// Real (wall-clock) disk-backed log broker — the "Kafka-class" substrate.
//
// Messages are appended to segment files as length-prefixed records with a
// CRC; consumers read sequentially from an offset, surviving process
// restarts (the log is the source of truth, exactly like a Kafka partition).
// Durability is configurable: fsync every message (acks=all semantics) or
// every N messages.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "metrics/registry.h"
#include "trace/span_context.h"

namespace serve::broker {

class FileLogBroker {
 public:
  struct Options {
    std::filesystem::path dir;             ///< log directory (created if absent)
    std::uint64_t segment_bytes = 1 << 20; ///< roll to a new segment beyond this
    std::uint32_t fsync_interval = 1;      ///< fsync every N appends (1 = per message)
    /// Kafka-style crash recovery: a torn record at the *tail* of the last
    /// segment (short header, or a body that extends past EOF — the shapes
    /// an interrupted append can leave) is truncated away instead of failing
    /// recovery. A fully written record with a bad CRC is corruption and
    /// always throws, as does any damage outside the tail or a claimed
    /// length beyond segment_bytes (a corrupted header, not a torn write).
    bool tolerate_torn_tail = false;
    /// Optional telemetry registry (appends / fsync cadence / segment
    /// rotations, counted with thread-safe handles — publish() may be called
    /// from real worker threads). Must outlive the broker.
    metrics::Registry* registry = nullptr;
  };

  explicit FileLogBroker(Options opts);
  ~FileLogBroker();
  FileLogBroker(const FileLogBroker&) = delete;
  FileLogBroker& operator=(const FileLogBroker&) = delete;

  /// Appends one record; returns its log offset (sequence number).
  std::uint64_t publish(const std::string& payload);

  /// Appends one record with its causal context framed in-band (the wire
  /// form rides inside the payload, so the record format — and therefore
  /// crash recovery — is unchanged). Read back with read_traced().
  std::uint64_t publish(const std::string& payload, const trace::SpanContext& ctx);

  /// A record read back together with the publish-time causal context
  /// (zero for records appended without one).
  struct TracedRecord {
    std::string payload;
    trace::SpanContext ctx{};
  };

  /// Reads the record at `offset` (0-based sequence number); std::nullopt
  /// past the end of the log. Thread-safe with concurrent publishes.
  [[nodiscard]] std::optional<std::string> read(std::uint64_t offset) const;

  /// Like read(), but splits off the in-band causal context when present.
  /// Context framing survives recover(): the context is part of the
  /// CRC-protected record bytes, so a reopened log keeps its parent links.
  [[nodiscard]] std::optional<TracedRecord> read_traced(std::uint64_t offset) const;

  [[nodiscard]] std::uint64_t size() const;  ///< records in the log
  [[nodiscard]] std::size_t segment_count() const;

  /// fsync() calls issued so far (cadence syncs + segment-rotation syncs);
  /// exposed so tests can pin the durability schedule.
  [[nodiscard]] std::uint64_t fsync_count() const;

  /// Re-scans the directory, rebuilding the in-memory index — simulates a
  /// broker restart. Throws on a corrupt record (bad CRC / truncation).
  void recover();

  /// CRC32 (IEEE 802.3 polynomial) used to protect records; exposed for
  /// testing and for readers in other processes.
  [[nodiscard]] static std::uint32_t crc32(const void* data, std::size_t len) noexcept;

 private:
  struct RecordRef {
    std::size_t segment;
    std::uint64_t file_offset;
    std::uint32_t length;
  };

  void open_new_segment();
  void index_segment(std::size_t seg_idx);
  void truncate_segment(std::size_t seg_idx, std::uint64_t keep_bytes);

  Options opts_;
  mutable std::mutex mu_;
  std::vector<std::filesystem::path> segments_;
  std::vector<RecordRef> index_;
  int active_fd_ = -1;
  std::uint64_t active_bytes_ = 0;
  std::uint32_t appends_since_sync_ = 0;
  std::uint64_t fsyncs_ = 0;
  metrics::Counter appends_m_;  ///< no-op handles without a registry
  metrics::Counter fsyncs_m_;
  metrics::Counter rotations_m_;
};

}  // namespace serve::broker
