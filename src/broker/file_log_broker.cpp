#include "broker/file_log_broker.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace serve::broker {

namespace fs = std::filesystem;

namespace {

// Record layout: [u32 length][u32 crc32(payload)][payload bytes]
constexpr std::size_t kHeaderBytes = 8;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) throw_errno("FileLogBroker: write");
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

std::string segment_name(std::size_t idx) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%08zu.log", idx);
  return buf;
}

}  // namespace

std::uint32_t FileLogBroker::crc32(const void* data, std::size_t len) noexcept {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

FileLogBroker::FileLogBroker(Options opts) : opts_(std::move(opts)) {
  if (opts_.dir.empty()) throw std::invalid_argument("FileLogBroker: need a log directory");
  if (opts_.fsync_interval == 0) throw std::invalid_argument("FileLogBroker: fsync_interval >= 1");
  if (opts_.registry != nullptr) {
    const metrics::Labels labels{{"broker", "filelog"}};
    appends_m_ = opts_.registry->counter("filelog_appends_total", labels);
    fsyncs_m_ = opts_.registry->counter("filelog_fsyncs_total", labels);
    rotations_m_ = opts_.registry->counter("filelog_segment_rotations_total", labels);
  }
  fs::create_directories(opts_.dir);
  recover();
}

FileLogBroker::~FileLogBroker() {
  if (active_fd_ >= 0) {
    ::fsync(active_fd_);
    ::close(active_fd_);
  }
}

void FileLogBroker::open_new_segment() {
  if (active_fd_ >= 0) {
    ::fsync(active_fd_);
    ++fsyncs_;
    fsyncs_m_.inc();
    rotations_m_.inc();
    // Rotation just made everything appended so far durable; restart the
    // fsync cadence so the new segment's first records are not synced
    // off-interval.
    appends_since_sync_ = 0;
    ::close(active_fd_);
  }
  const fs::path path = opts_.dir / segment_name(segments_.size());
  active_fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (active_fd_ < 0) throw_errno("FileLogBroker: open segment");
  segments_.push_back(path);
  active_bytes_ = 0;
}

std::uint64_t FileLogBroker::publish(const std::string& payload) {
  std::lock_guard lock{mu_};
  if (active_fd_ < 0 || active_bytes_ >= opts_.segment_bytes) open_new_segment();
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  std::array<char, kHeaderBytes> header;
  std::memcpy(header.data(), &len, 4);
  std::memcpy(header.data() + 4, &crc, 4);
  const std::uint64_t file_offset = active_bytes_;
  write_all(active_fd_, header.data(), header.size());
  if (!payload.empty()) write_all(active_fd_, payload.data(), payload.size());
  active_bytes_ += kHeaderBytes + payload.size();
  appends_m_.inc();
  if (++appends_since_sync_ >= opts_.fsync_interval) {
    if (::fsync(active_fd_) != 0) throw_errno("FileLogBroker: fsync");
    ++fsyncs_;
    fsyncs_m_.inc();
    appends_since_sync_ = 0;
  }
  index_.push_back(RecordRef{segments_.size() - 1, file_offset, len});
  return index_.size() - 1;
}

std::uint64_t FileLogBroker::publish(const std::string& payload,
                                     const trace::SpanContext& ctx) {
  // In-band framing: the context header becomes part of the record's payload
  // bytes, so CRC protection, torn-tail recovery, and cross-process readers
  // that strip the marker all keep working unchanged.
  return publish(trace::wrap_with_context(ctx, payload));
}

std::optional<FileLogBroker::TracedRecord> FileLogBroker::read_traced(
    std::uint64_t offset) const {
  auto raw = read(offset);
  if (!raw) return std::nullopt;
  const trace::Unwrapped u = trace::unwrap_context(*raw);
  return TracedRecord{std::string(u.payload), u.ctx};
}

std::optional<std::string> FileLogBroker::read(std::uint64_t offset) const {
  std::lock_guard lock{mu_};
  if (offset >= index_.size()) return std::nullopt;
  const RecordRef& ref = index_[offset];
  const int fd = ::open(segments_[ref.segment].c_str(), O_RDONLY);
  if (fd < 0) throw_errno("FileLogBroker: open for read");
  std::string payload(ref.length, '\0');
  std::array<char, kHeaderBytes> header;
  ssize_t n = ::pread(fd, header.data(), header.size(), static_cast<off_t>(ref.file_offset));
  bool ok = n == static_cast<ssize_t>(header.size());
  if (ok && ref.length > 0) {
    n = ::pread(fd, payload.data(), payload.size(),
                static_cast<off_t>(ref.file_offset + kHeaderBytes));
    ok = n == static_cast<ssize_t>(payload.size());
  }
  ::close(fd);
  if (!ok) throw std::runtime_error("FileLogBroker: short read (truncated log?)");
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, header.data() + 4, 4);
  if (stored_crc != crc32(payload.data(), payload.size())) {
    throw std::runtime_error("FileLogBroker: CRC mismatch (corrupt record)");
  }
  return payload;
}

std::uint64_t FileLogBroker::size() const {
  std::lock_guard lock{mu_};
  return index_.size();
}

std::size_t FileLogBroker::segment_count() const {
  std::lock_guard lock{mu_};
  return segments_.size();
}

std::uint64_t FileLogBroker::fsync_count() const {
  std::lock_guard lock{mu_};
  return fsyncs_;
}

void FileLogBroker::truncate_segment(std::size_t seg_idx, std::uint64_t keep_bytes) {
  if (::truncate(segments_[seg_idx].c_str(), static_cast<off_t>(keep_bytes)) != 0) {
    throw_errno("FileLogBroker: truncate torn tail");
  }
}

void FileLogBroker::index_segment(std::size_t seg_idx) {
  const bool is_tail_segment = seg_idx + 1 == segments_.size();
  const bool tolerant = opts_.tolerate_torn_tail && is_tail_segment;
  const int fd = ::open(segments_[seg_idx].c_str(), O_RDONLY);
  if (fd < 0) throw_errno("FileLogBroker: open for recovery");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("FileLogBroker: stat during recovery");
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  std::uint64_t pos = 0;
  std::array<char, kHeaderBytes> header;
  while (true) {
    const ssize_t n = ::pread(fd, header.data(), header.size(), static_cast<off_t>(pos));
    if (n == 0) break;  // clean end of segment
    if (n != static_cast<ssize_t>(header.size())) {
      ::close(fd);
      if (tolerant) {
        truncate_segment(seg_idx, pos);
        break;
      }
      throw std::runtime_error("FileLogBroker: truncated record header during recovery");
    }
    std::uint32_t len, crc;
    std::memcpy(&len, header.data(), 4);
    std::memcpy(&crc, header.data() + 4, 4);
    // Validate the claimed length against the bytes actually on disk before
    // trusting it: a corrupted header must not drive a multi-GiB allocation.
    // A record running past EOF is only treated as a torn tail when its
    // claimed length stays within the segment budget — the one plausibility
    // bound recovery has. A wildly inflated length is a corrupted header,
    // and truncating on it would discard every valid record that follows.
    // (The cost: a crash mid-append of a single record larger than
    // segment_bytes refuses to auto-recover and asks the operator instead.)
    if (len > file_size - pos - kHeaderBytes) {
      ::close(fd);
      if (tolerant && len <= std::max<std::uint64_t>(opts_.segment_bytes, kHeaderBytes)) {
        truncate_segment(seg_idx, pos);
        break;
      }
      throw std::runtime_error(
          "FileLogBroker: record length exceeds segment size during recovery");
    }
    std::string payload(len, '\0');
    bool record_ok = true;
    if (len > 0) {
      const ssize_t pn =
          ::pread(fd, payload.data(), payload.size(), static_cast<off_t>(pos + kHeaderBytes));
      record_ok = pn == static_cast<ssize_t>(payload.size());
    }
    if (record_ok) record_ok = crc == crc32(payload.data(), payload.size());
    if (!record_ok) {
      ::close(fd);
      // The record is fully on disk but its CRC does not match: that is
      // corruption, never a torn write — even at the tail, even in tolerant
      // mode. Truncating here would silently discard valid data.
      throw std::runtime_error("FileLogBroker: corrupt record during recovery");
    }
    index_.push_back(RecordRef{seg_idx, pos, len});
    pos += kHeaderBytes + len;
  }
  ::close(fd);
  if (is_tail_segment) active_bytes_ = pos;
}

void FileLogBroker::recover() {
  std::lock_guard lock{mu_};
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  segments_.clear();
  index_.clear();
  std::vector<fs::path> found;
  for (const auto& entry : fs::directory_iterator(opts_.dir)) {
    if (entry.path().extension() == ".log") found.push_back(entry.path());
  }
  std::sort(found.begin(), found.end());
  segments_ = std::move(found);
  for (std::size_t i = 0; i < segments_.size(); ++i) index_segment(i);
  if (!segments_.empty()) {
    // Reopen the last segment for appends.
    active_fd_ = ::open(segments_.back().c_str(), O_WRONLY | O_APPEND);
    if (active_fd_ < 0) throw_errno("FileLogBroker: reopen active segment");
  }
  appends_since_sync_ = 0;
}

}  // namespace serve::broker
