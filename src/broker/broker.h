// Simulated message brokers for multi-DNN pipelines (paper Section 4.7).
//
// The paper compares three ways to connect a face-detection stage to a
// face-identification stage running at different rates:
//   - Apache Kafka: disk-backed log, durable per-message writes (prior work);
//   - Redis: in-memory broker on the same host;
//   - Fused: no broker, both stages in one process.
// SimBroker models the first two with a profile (publish service time on a
// bounded IO-thread pool + delivery latency); Fused is the absence of a
// broker in the pipeline code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "hw/calibration.h"
#include "metrics/registry.h"
#include "sim/channel.h"
#include "sim/fault_plan.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "trace/causal.h"
#include "trace/span_context.h"

namespace serve::broker {

/// Cost profile of a broker deployment.
struct BrokerProfile {
  std::string name;
  double publish_service_s = 0.0;  ///< broker-side work per message (serialized
                                   ///< across io_threads; fsync for disk logs)
  double consume_latency_s = 0.0;  ///< poll/fetch delay charged to the consumer
  int io_threads = 1;
  bool disk_backed = false;
};

[[nodiscard]] inline BrokerProfile kafka_profile(const hw::BrokerCalib& c) {
  return {.name = "kafka",
          .publish_service_s = c.kafka_publish_service_s,
          .consume_latency_s = c.kafka_consume_latency_s,
          .io_threads = c.kafka_io_threads,
          .disk_backed = true};
}

[[nodiscard]] inline BrokerProfile redis_profile(const hw::BrokerCalib& c) {
  return {.name = "redis",
          .publish_service_s = c.redis_publish_service_s,
          .consume_latency_s = c.redis_consume_latency_s,
          .io_threads = c.redis_io_threads,
          .disk_backed = false};
}

/// Simulated publish/subscribe topic with broker-side costs. An optional
/// FaultPlan makes the broker fail publishes and stall deliveries inside
/// kBrokerOutage windows (deterministically, like every other fault).
///
/// Causal tracing: with a CausalTracer attached, `publish(msg, ctx)` records
/// a publish span (child of `ctx`) and stores its context alongside the
/// message; `consume_traced` records the matching delivery span (child of
/// the publish span) covering visible-to-consumed, and hands the delivery
/// context to the consumer so downstream spans keep the causal chain across
/// the broker hop. Both spans are named "broker" so critical-path stage
/// shares line up with metrics::Stage::kBroker.
template <typename T>
class SimBroker {
 public:
  /// A consumed message plus the delivery span's context (zero when the
  /// publisher attached no context or no tracer is installed).
  struct Delivery {
    T payload;
    trace::SpanContext ctx{};
  };

  SimBroker(sim::Simulator& sim, BrokerProfile profile, const sim::FaultPlan* faults = nullptr,
            metrics::Registry* registry = nullptr)
      : sim_(sim),
        profile_(std::move(profile)),
        faults_(faults),
        io_(sim, static_cast<std::size_t>(profile_.io_threads), profile_.name + ".io"),
        topic_(sim, std::numeric_limits<std::size_t>::max(), profile_.name + ".topic") {
    if (registry != nullptr) {
      const metrics::Labels labels{{"broker", profile_.name}};
      published_m_ = registry->counter("broker_published_total", labels);
      consumed_m_ = registry->counter("broker_consumed_total", labels);
      failures_m_ = registry->counter("broker_publish_failures_total", labels);
      registry->gauge_fn("broker_topic_depth", labels,
                         [this] { return static_cast<double>(topic_.size()); });
      // Capacity-plane feed: the broker IO pool joins the hw_resource_*
      // namespace so the attributor sees it next to the device engines.
      const metrics::Labels rl{{"device", "broker"}, {"engine", "io"}};
      registry->gauge_fn("hw_resource_in_use", rl,
                         [this] { return static_cast<double>(io_.in_use()); });
      registry->counter_fn("hw_resource_busy_seconds_total", rl,
                           [this] { return io_.busy_seconds_total(); });
      registry->counter_fn("hw_resource_queue_seconds_total", rl,
                           [this] { return io_.queue_seconds_total(); });
      registry->gauge_fn("hw_resource_capacity", rl,
                         [this] { return static_cast<double>(io_.capacity()); });
    }
  }

  /// Publishes one message: occupies an IO thread for the service time, then
  /// the message becomes visible to consumers. Returns false (message not
  /// accepted) when a broker-outage fault window is active — the service
  /// time is still paid, as a real client pays for a timed-out round trip.
  sim::Task<bool> publish(T msg) { return publish(std::move(msg), trace::SpanContext{}); }

  /// Publish with causal context propagation: the publish span (IO queue +
  /// service time, and the rejection verdict during an outage) is recorded
  /// as a child of `ctx`, and its context travels with the message so the
  /// delivery span can parent under it at consume time.
  sim::Task<bool> publish(T msg, trace::SpanContext ctx) {
    const sim::Time t0 = sim_.now();
    auto io = co_await io_.acquire();
    co_await sim_.wait(sim::seconds(profile_.publish_service_s));
    io.release();
    if (outage_now()) {
      ++publish_failures_;
      failures_m_.inc();
      if (tracer_ != nullptr && ctx.valid()) {
        tracer_->child_span(ctx, profile_.name + ".broker", "broker", t0, sim_.now(),
                            {{"op", "publish"}, {"outcome", "rejected"}});
      }
      co_return false;
    }
    ++published_;
    published_m_.inc();
    trace::SpanContext pub_ctx = ctx;
    if (tracer_ != nullptr && ctx.valid()) {
      pub_ctx = tracer_->child_span(ctx, profile_.name + ".broker", "broker", t0, sim_.now(),
                                    {{"op", "publish"}});
    }
    topic_.try_put(Envelope{std::move(msg), pub_ctx, sim_.now()});
    co_return true;
  }

  /// Blocks until a message is available (or the topic closes), then charges
  /// the consumer-side delivery latency. Messages already in the topic when
  /// an outage begins are held back until the window ends.
  sim::Task<std::optional<T>> consume() {
    auto d = co_await consume_traced();
    co_return d ? std::optional<T>(std::move(d->payload)) : std::nullopt;
  }

  /// Like consume(), but also returns the delivery span's context. The
  /// delivery span covers visible-at through consumed (topic dwell + any
  /// outage hold + consumer fetch latency) — on the critical path it is the
  /// broker's whole contribution to end-to-end latency.
  sim::Task<std::optional<Delivery>> consume_traced() {
    auto env = co_await topic_.get();
    if (!env) co_return std::nullopt;
    const sim::Time until = outage_until();
    if (until > sim_.now()) co_await sim_.wait(until - sim_.now());
    co_await sim_.wait(sim::seconds(profile_.consume_latency_s));
    ++consumed_;
    consumed_m_.inc();
    Delivery d{std::move(env->payload), env->ctx};
    if (tracer_ != nullptr && env->ctx.valid()) {
      d.ctx = tracer_->child_span(env->ctx, profile_.name + ".broker", "broker",
                                  env->visible_at, sim_.now(), {{"op", "deliver"}});
    }
    co_return d;
  }

  /// Records publish/delivery spans through `tracer` (nullptr disables).
  void set_tracer(trace::CausalTracer* tracer) noexcept { tracer_ = tracer; }

  void close() { topic_.close(); }

  [[nodiscard]] const BrokerProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] std::uint64_t published() const noexcept { return published_; }
  [[nodiscard]] std::uint64_t consumed() const noexcept { return consumed_; }
  [[nodiscard]] std::uint64_t publish_failures() const noexcept { return publish_failures_; }
  [[nodiscard]] std::size_t depth() const noexcept { return topic_.size(); }
  [[nodiscard]] sim::Resource& io() noexcept { return io_; }

 private:
  /// What actually sits in the topic: payload + the publish span's context +
  /// the instant the message became consumer-visible.
  struct Envelope {
    T payload;
    trace::SpanContext ctx{};
    sim::Time visible_at = 0;
  };

  [[nodiscard]] bool outage_now() const noexcept {
    return faults_ != nullptr && faults_->active(sim::FaultKind::kBrokerOutage,
                                                 sim::FaultWindow::kAllTargets, sim_.now());
  }
  [[nodiscard]] sim::Time outage_until() const noexcept {
    return faults_ == nullptr ? sim_.now()
                              : faults_->active_until(sim::FaultKind::kBrokerOutage,
                                                      sim::FaultWindow::kAllTargets, sim_.now());
  }

  sim::Simulator& sim_;
  BrokerProfile profile_;
  const sim::FaultPlan* faults_ = nullptr;
  trace::CausalTracer* tracer_ = nullptr;
  sim::Resource io_;
  sim::Channel<Envelope> topic_;
  std::uint64_t published_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t publish_failures_ = 0;
  metrics::Counter published_m_;  ///< no-op handles without a registry
  metrics::Counter consumed_m_;
  metrics::Counter failures_m_;
};

}  // namespace serve::broker
