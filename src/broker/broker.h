// Simulated message brokers for multi-DNN pipelines (paper Section 4.7).
//
// The paper compares three ways to connect a face-detection stage to a
// face-identification stage running at different rates:
//   - Apache Kafka: disk-backed log, durable per-message writes (prior work);
//   - Redis: in-memory broker on the same host;
//   - Fused: no broker, both stages in one process.
// SimBroker models the first two with a profile (publish service time on a
// bounded IO-thread pool + delivery latency); Fused is the absence of a
// broker in the pipeline code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "hw/calibration.h"
#include "metrics/registry.h"
#include "sim/channel.h"
#include "sim/fault_plan.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace serve::broker {

/// Cost profile of a broker deployment.
struct BrokerProfile {
  std::string name;
  double publish_service_s = 0.0;  ///< broker-side work per message (serialized
                                   ///< across io_threads; fsync for disk logs)
  double consume_latency_s = 0.0;  ///< poll/fetch delay charged to the consumer
  int io_threads = 1;
  bool disk_backed = false;
};

[[nodiscard]] inline BrokerProfile kafka_profile(const hw::BrokerCalib& c) {
  return {.name = "kafka",
          .publish_service_s = c.kafka_publish_service_s,
          .consume_latency_s = c.kafka_consume_latency_s,
          .io_threads = c.kafka_io_threads,
          .disk_backed = true};
}

[[nodiscard]] inline BrokerProfile redis_profile(const hw::BrokerCalib& c) {
  return {.name = "redis",
          .publish_service_s = c.redis_publish_service_s,
          .consume_latency_s = c.redis_consume_latency_s,
          .io_threads = c.redis_io_threads,
          .disk_backed = false};
}

/// Simulated publish/subscribe topic with broker-side costs. An optional
/// FaultPlan makes the broker fail publishes and stall deliveries inside
/// kBrokerOutage windows (deterministically, like every other fault).
template <typename T>
class SimBroker {
 public:
  SimBroker(sim::Simulator& sim, BrokerProfile profile, const sim::FaultPlan* faults = nullptr,
            metrics::Registry* registry = nullptr)
      : sim_(sim),
        profile_(std::move(profile)),
        faults_(faults),
        io_(sim, static_cast<std::size_t>(profile_.io_threads), profile_.name + ".io"),
        topic_(sim, std::numeric_limits<std::size_t>::max(), profile_.name + ".topic") {
    if (registry != nullptr) {
      const metrics::Labels labels{{"broker", profile_.name}};
      published_m_ = registry->counter("broker_published_total", labels);
      consumed_m_ = registry->counter("broker_consumed_total", labels);
      failures_m_ = registry->counter("broker_publish_failures_total", labels);
      registry->gauge_fn("broker_topic_depth", labels,
                         [this] { return static_cast<double>(topic_.size()); });
    }
  }

  /// Publishes one message: occupies an IO thread for the service time, then
  /// the message becomes visible to consumers. Returns false (message not
  /// accepted) when a broker-outage fault window is active — the service
  /// time is still paid, as a real client pays for a timed-out round trip.
  sim::Task<bool> publish(T msg) {
    auto io = co_await io_.acquire();
    co_await sim_.wait(sim::seconds(profile_.publish_service_s));
    io.release();
    if (outage_now()) {
      ++publish_failures_;
      failures_m_.inc();
      co_return false;
    }
    ++published_;
    published_m_.inc();
    topic_.try_put(std::move(msg));
    co_return true;
  }

  /// Blocks until a message is available (or the topic closes), then charges
  /// the consumer-side delivery latency. Messages already in the topic when
  /// an outage begins are held back until the window ends.
  sim::Task<std::optional<T>> consume() {
    auto msg = co_await topic_.get();
    if (msg) {
      const sim::Time until = outage_until();
      if (until > sim_.now()) co_await sim_.wait(until - sim_.now());
      co_await sim_.wait(sim::seconds(profile_.consume_latency_s));
      ++consumed_;
      consumed_m_.inc();
    }
    co_return msg;
  }

  void close() { topic_.close(); }

  [[nodiscard]] const BrokerProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] std::uint64_t published() const noexcept { return published_; }
  [[nodiscard]] std::uint64_t consumed() const noexcept { return consumed_; }
  [[nodiscard]] std::uint64_t publish_failures() const noexcept { return publish_failures_; }
  [[nodiscard]] std::size_t depth() const noexcept { return topic_.size(); }
  [[nodiscard]] sim::Resource& io() noexcept { return io_; }

 private:
  [[nodiscard]] bool outage_now() const noexcept {
    return faults_ != nullptr && faults_->active(sim::FaultKind::kBrokerOutage,
                                                 sim::FaultWindow::kAllTargets, sim_.now());
  }
  [[nodiscard]] sim::Time outage_until() const noexcept {
    return faults_ == nullptr ? sim_.now()
                              : faults_->active_until(sim::FaultKind::kBrokerOutage,
                                                      sim::FaultWindow::kAllTargets, sim_.now());
  }

  sim::Simulator& sim_;
  BrokerProfile profile_;
  const sim::FaultPlan* faults_ = nullptr;
  sim::Resource io_;
  sim::Channel<T> topic_;
  std::uint64_t published_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t publish_failures_ = 0;
  metrics::Counter published_m_;  ///< no-op handles without a registry
  metrics::Counter consumed_m_;
  metrics::Counter failures_m_;
};

}  // namespace serve::broker
