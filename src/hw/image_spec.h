// Description of a client image as it travels through the serving pipeline.
#pragma once

#include <cstdint>

namespace serve::hw {

/// Geometry and on-the-wire size of one input image.
///
/// The paper's three representative ImageNet sizes (footnote 3) are provided
/// as presets; arbitrary sizes are supported for sweeps.
struct ImageSpec {
  int width = 0;
  int height = 0;
  std::int64_t compressed_bytes = 0;  ///< JPEG size as received from the client

  [[nodiscard]] constexpr std::int64_t pixels() const noexcept {
    return static_cast<std::int64_t>(width) * height;
  }

  /// Raw decoded RGB888 size at original resolution.
  [[nodiscard]] constexpr std::int64_t decoded_bytes() const noexcept { return pixels() * 3; }

  constexpr bool operator==(const ImageSpec&) const noexcept = default;
};

/// Tensor produced by preprocessing: `side x side` RGB in fp32 (the layout
/// TensorRT vision models consume). 224x224x3x4 = 602,112 bytes — the "~5x
/// larger than the compressed medium image" transfer the paper root-causes
/// in Section 4.4.
[[nodiscard]] constexpr std::int64_t tensor_bytes(int side) noexcept {
  return static_cast<std::int64_t>(side) * side * 3 * 4;
}

/// Paper footnote 3: "Small: 4kB 60x70" from ImageNet.
inline constexpr ImageSpec kSmallImage{60, 70, 4 * 1024};
/// Paper footnote 3: "Medium: 121kB 500x375".
inline constexpr ImageSpec kMediumImage{500, 375, 121 * 1024};
/// Paper footnote 3: "Large: 9528kB 3564x2880".
inline constexpr ImageSpec kLargeImage{3564, 2880, 9528 * 1024};

}  // namespace serve::hw
