// Named platform presets.
//
// The paper measures one testbed (i9-13900K + RTX 4090). The calibration
// structure generalizes: these presets describe other deployment classes so
// the same experiments can ask "would the conclusions hold on a datacenter
// accelerator or an edge box?" — the cross-platform ablation bench does
// exactly that. Values are datasheet-order-of-magnitude, documented per
// field; only *relative* behaviour is meaningful.
#pragma once

#include "hw/calibration.h"

namespace serve::hw {

/// The paper's testbed (default calibration): desktop i9 + RTX 4090.
[[nodiscard]] inline Calibration rtx4090_i9_preset() { return default_calibration(); }

/// Datacenter node: 2x32-core server CPU + A100-class accelerator.
/// More host cores and PCIe headroom, similar tensor throughput for
/// inference-sized batches, bigger memory, higher idle draw.
[[nodiscard]] inline Calibration a100_server_preset() {
  Calibration c = default_calibration();
  c.cpu.cores = 64;
  c.cpu.preproc_workers = 48;
  c.gpu.effective_flops = 48e12;            // A100 fp16 tensor, serving-efficiency
  c.gpu.memory_bytes = 80LL << 30;
  c.gpu.staging_budget_bytes = 16LL << 30;  // far more staging headroom
  c.gpu.preproc_pipelines = 8;              // DALI scales with the bigger L2
  c.pcie.gpu_link_bytes_per_s = 20e9;       // Gen4 x16 with pinned staging
  c.pcie.host_agg_bytes_per_s = 32e9;       // server root complex
  c.power.cpu_idle_w = 90.0;
  c.power.cpu_core_active_w = 4.0;
  c.power.gpu_idle_w = 55.0;
  c.power.gpu_compute_active_w = 330.0;
  return c;
}

/// Edge box: 8-core mobile CPU + small integrated accelerator. Tiny batch
/// appetite, shared memory (cheap "transfers"), low power.
[[nodiscard]] inline Calibration edge_box_preset() {
  Calibration c = default_calibration();
  c.cpu.cores = 8;
  c.cpu.preproc_workers = 4;
  c.cpu.decode_mpix_per_s = 90e6;   // mobile-class core
  c.cpu.resize_mpix_per_s = 500e6;
  c.gpu.effective_flops = 2.2e12;   // Orin-class tensor throughput
  c.gpu.batch_half_life = 1.0;      // small engines saturate at tiny batches
  c.gpu.preproc_pipelines = 2;
  c.gpu.gpu_hw_decode_pix_per_s = 0.6e9;
  c.gpu.gpu_sm_decode_pix_per_s = 0.2e9;
  c.gpu.memory_bytes = 8LL << 30;   // shared with the host
  c.gpu.staging_budget_bytes = 1LL << 30;
  c.pcie.gpu_link_bytes_per_s = 30e9;  // unified memory: copies are cheap...
  c.pcie.host_agg_bytes_per_s = 30e9;  // ...but the fabric is shared
  c.power.cpu_idle_w = 5.0;
  c.power.cpu_core_active_w = 2.5;
  c.power.gpu_idle_w = 3.0;
  c.power.gpu_compute_active_w = 30.0;
  c.power.gpu_preproc_active_w = 8.0;
  c.power.gpu_stall_w = 10.0;
  return c;
}

/// This repository's own codec substrate, as measured by the last
/// `calibrate --substrate` run (2026-08, AVX2 dispatch active). Unlike the
/// paper-testbed defaults these rates describe *our* SIMD JPEG/resize/
/// normalize implementations, so experiments can be replayed against the
/// machine that built them. Re-run `calibrate --substrate` after kernel
/// work and refresh the three rates below from its suggestion block.
/// The resize rate is quoted in source pixels and is dominated by the
/// large-image downscale (few output rows per source row), hence the high
/// number; the decode rate is the probe's mean across S/M/L JPEGs.
[[nodiscard]] inline Calibration local_substrate_preset() {
  Calibration c = default_calibration();
  c.cpu.decode_mpix_per_s = 172e6;
  c.cpu.resize_mpix_per_s = 4634e6;
  c.cpu.normalize_mpix_per_s = 1077e6;
  return c;
}

}  // namespace serve::hw
