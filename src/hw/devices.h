// Device models composing the simulated serving node: host CPU, GPUs with
// compute/preprocessing/copy engines, and the PCIe fabric.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/calibration.h"
#include "hw/gpu_memory.h"
#include "hw/image_spec.h"
#include "metrics/registry.h"
#include "sim/fault_plan.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace serve::hw {

/// Host CPU: a pool of cores for the web stack plus a tuned preprocessing
/// worker pool, with analytic per-image preprocessing costs.
class CpuModel {
 public:
  CpuModel(sim::Simulator& sim, const CpuCalib& calib)
      : sim_(sim),
        calib_(calib),
        cores_(sim, static_cast<std::size_t>(calib.cores), "cpu.cores"),
        preproc_workers_(sim, static_cast<std::size_t>(calib.preproc_workers),
                         "cpu.preproc_workers") {}

  [[nodiscard]] const CpuCalib& calib() const noexcept { return calib_; }
  [[nodiscard]] sim::Resource& cores() noexcept { return cores_; }
  [[nodiscard]] sim::Resource& preproc_workers() noexcept { return preproc_workers_; }

  /// Installs the fault schedule (kPreprocSlowdown windows stretch worker
  /// service times). nullptr = healthy.
  void set_faults(const sim::FaultPlan* faults) noexcept { faults_ = faults; }

  /// Seconds one worker takes to decode+resize+normalize one image down to a
  /// `target_side`^2 network input using the raw image library (the Fig. 3
  /// "python loop" path). `skip_decode` models an ingress-cache image-level
  /// hit: the decoded RGB buffer is already in host memory, so only resize +
  /// normalize run.
  [[nodiscard]] double raw_preprocess_seconds(const ImageSpec& img, int target_side,
                                              bool skip_decode = false) const noexcept {
    const auto src_pix = static_cast<double>(img.pixels());
    const auto dst_pix = static_cast<double>(target_side) * target_side;
    return calib_.preproc_fixed_s + (skip_decode ? 0.0 : src_pix / calib_.decode_mpix_per_s) +
           src_pix / calib_.resize_mpix_per_s + dst_pix / calib_.normalize_mpix_per_s;
  }

  /// Same work performed inside the serving framework's preprocessing
  /// backend (per-request packaging and interpreter overhead included).
  /// Active kPreprocSlowdown fault windows stretch the service time.
  [[nodiscard]] double preprocess_seconds(const ImageSpec& img, int target_side,
                                          bool skip_decode = false) const noexcept {
    double t = calib_.server_preproc_factor * raw_preprocess_seconds(img, target_side, skip_decode);
    if (faults_ != nullptr) {
      t *= faults_->multiplier(sim::FaultKind::kPreprocSlowdown,
                               sim::FaultWindow::kAllTargets, sim_.now());
    }
    return t;
  }

  [[nodiscard]] double ingest_seconds() const noexcept { return calib_.ingest_s; }
  [[nodiscard]] double postprocess_seconds() const noexcept { return calib_.postprocess_s; }
  [[nodiscard]] double staging_seconds_per_image() const noexcept {
    return calib_.staging_per_image_s;
  }

 private:
  sim::Simulator& sim_;
  CpuCalib calib_;
  const sim::FaultPlan* faults_ = nullptr;
  sim::Resource cores_;
  sim::Resource preproc_workers_;
};

/// One accelerator: serialized compute engine, DALI-style preprocessing
/// pipelines, one copy engine per direction, and a staging-memory model.
class GpuModel {
 public:
  GpuModel(sim::Simulator& sim, const GpuCalib& calib, const PcieCalib& pcie, int index)
      : sim_(sim),
        calib_(calib),
        pcie_(pcie),
        index_(index),
        compute_(sim, 1, "gpu.compute"),
        preproc_(sim, static_cast<std::size_t>(calib.preproc_pipelines), "gpu.preproc"),
        copy_h2d_(sim, 1, "gpu.copy_h2d"),
        copy_d2h_(sim, 1, "gpu.copy_d2h"),
        stall_(sim, 1, "gpu.stall"),
        nvdec_(sim, 1, "gpu.nvdec"),
        stager_(calib.staging_budget_bytes) {}

  [[nodiscard]] const GpuCalib& calib() const noexcept { return calib_; }
  [[nodiscard]] int index() const noexcept { return index_; }
  [[nodiscard]] sim::Resource& compute() noexcept { return compute_; }
  [[nodiscard]] sim::Resource& preproc() noexcept { return preproc_; }
  [[nodiscard]] sim::Resource& copy_h2d() noexcept { return copy_h2d_; }
  [[nodiscard]] sim::Resource& copy_d2h() noexcept { return copy_d2h_; }
  /// Held while the host-side scheduler blocks the GPU pipeline (energy
  /// accounting for boost-clock stalls; see PowerCalib::gpu_stall_w).
  [[nodiscard]] sim::Resource& stall() noexcept { return stall_; }
  /// Fixed-function hardware video decoder (NVDEC-class).
  [[nodiscard]] sim::Resource& nvdec() noexcept { return nvdec_; }
  [[nodiscard]] GpuMemoryStager& stager() noexcept { return stager_; }

  /// Installs the fault schedule (kPcieDegradation stretches link_seconds;
  /// kGpuFailure is consulted by the serving scheduler). nullptr = healthy.
  void set_faults(const sim::FaultPlan* faults) noexcept { faults_ = faults; }
  [[nodiscard]] const sim::FaultPlan* faults() const noexcept { return faults_; }

  /// True while a kGpuFailure window covers this GPU.
  [[nodiscard]] bool failed_now() const noexcept {
    return faults_ != nullptr &&
           faults_->active(sim::FaultKind::kGpuFailure, index_, sim_.now());
  }

  /// Small-batch efficiency of the tensor engine in (0, 1].
  [[nodiscard]] double batch_efficiency(int batch) const noexcept {
    const auto b = static_cast<double>(batch);
    return b / (b + calib_.batch_half_life);
  }

  /// Seconds to run one batch of a model with `flops_per_item` FLOPs/image.
  /// `backend_factor` derates TensorRT (1.0) to ONNX / PyTorch.
  /// `contended` applies the SM-sharing tax while GPU preprocessing is on.
  [[nodiscard]] double inference_batch_seconds(double flops_per_item, int batch,
                                               double backend_factor,
                                               bool contended) const noexcept {
    const double rate = calib_.effective_flops * backend_factor * batch_efficiency(batch) *
                        (contended ? 1.0 - calib_.preproc_compute_contention : 1.0);
    return calib_.kernel_launch_s + static_cast<double>(batch) * flops_per_item / rate;
  }

  /// Per-image GPU preprocessing cost (decode + resize) excluding the
  /// per-batch fixed pipeline cost. Images beyond the hardware JPEG
  /// decoder's limits fall back to the slower SM decode path. `skip_decode`
  /// models an ingress-cache image-level hit (host already holds the decoded
  /// RGB buffer: only the resize kernel runs on the device).
  [[nodiscard]] double preproc_image_seconds(const ImageSpec& img,
                                             bool skip_decode = false) const noexcept {
    const auto pix = static_cast<double>(img.pixels());
    const double decode_rate = img.pixels() <= calib_.hw_decoder_max_pixels
                                   ? calib_.gpu_hw_decode_pix_per_s
                                   : calib_.gpu_sm_decode_pix_per_s;
    return calib_.dali_image_fixed_s + (skip_decode ? 0.0 : pix / decode_rate) +
           pix / calib_.gpu_resize_pix_per_s;
  }

  [[nodiscard]] double preproc_batch_fixed_seconds() const noexcept {
    return calib_.dali_batch_fixed_s;
  }

  /// Seconds the per-GPU PCIe link is occupied moving `bytes`. Active
  /// kPcieDegradation fault windows stretch the transfer.
  [[nodiscard]] double link_seconds(std::int64_t bytes) const noexcept {
    double t = pcie_.per_transfer_fixed_s +
               static_cast<double>(bytes) / pcie_.gpu_link_bytes_per_s;
    if (faults_ != nullptr) {
      t *= faults_->multiplier(sim::FaultKind::kPcieDegradation, index_, sim_.now());
    }
    return t;
  }

 private:
  sim::Simulator& sim_;
  GpuCalib calib_;
  PcieCalib pcie_;
  const sim::FaultPlan* faults_ = nullptr;
  int index_;
  sim::Resource compute_;
  sim::Resource preproc_;
  sim::Resource copy_h2d_;
  sim::Resource copy_d2h_;
  sim::Resource stall_;
  sim::Resource nvdec_;
  GpuMemoryStager stager_;
};

/// Complete simulated node: CPU + N GPUs + shared host PCIe fabric.
class Platform {
 public:
  struct Config {
    Calibration calib = default_calibration();
    int gpu_count = 1;
    /// Optional fault-injection schedule; must outlive the platform.
    const sim::FaultPlan* faults = nullptr;
    /// Optional telemetry registry. Device occupancy and staging-memory
    /// state register as callback instruments sampled by the flight
    /// recorder; call registry->freeze_callbacks() before destroying the
    /// platform if the registry outlives it.
    metrics::Registry* registry = nullptr;
  };

  Platform(sim::Simulator& sim, Config config)
      : sim_(sim),
        calib_(config.calib),
        faults_(config.faults),
        registry_(config.registry),
        cpu_(sim, config.calib.cpu),
        host_link_(sim, 1, "pcie.host") {
    if (config.gpu_count < 1) throw std::invalid_argument("Platform: need at least one GPU");
    cpu_.set_faults(faults_);
    gpus_.reserve(static_cast<std::size_t>(config.gpu_count));
    for (int i = 0; i < config.gpu_count; ++i) {
      gpus_.push_back(std::make_unique<GpuModel>(sim, config.calib.gpu, config.calib.pcie, i));
      gpus_.back()->set_faults(faults_);
    }
    if (registry_ != nullptr) register_instruments();
  }

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] const Calibration& calib() const noexcept { return calib_; }
  [[nodiscard]] CpuModel& cpu() noexcept { return cpu_; }
  [[nodiscard]] std::size_t gpu_count() const noexcept { return gpus_.size(); }
  [[nodiscard]] GpuModel& gpu(std::size_t i) { return *gpus_.at(i); }

  /// Shared host-side PCIe fabric (one staging engine feeding all GPUs).
  [[nodiscard]] sim::Resource& host_link() noexcept { return host_link_; }
  [[nodiscard]] double host_link_seconds(std::int64_t bytes) const noexcept {
    double t = static_cast<double>(bytes) / calib_.pcie.host_agg_bytes_per_s;
    if (faults_ != nullptr) {
      t *= faults_->multiplier(sim::FaultKind::kPcieDegradation,
                               sim::FaultWindow::kAllTargets, sim_.now());
    }
    return t;
  }

  /// Fault schedule this platform was built with (nullptr = healthy).
  [[nodiscard]] const sim::FaultPlan* faults() const noexcept { return faults_; }

  /// Telemetry registry this platform reports into (nullptr = disabled).
  [[nodiscard]] metrics::Registry* registry() const noexcept { return registry_; }

 private:
  /// Occupancy and staging state are exposed as sampled callbacks rather
  /// than observer hooks: hw::attach_tracer already owns the single
  /// Resource change-observer slot, and the flight recorder only needs
  /// values at tick boundaries anyway.
  void register_instruments() {
    auto in_use = [](sim::Resource& r) {
      return [&r] { return static_cast<double>(r.in_use()); };
    };
    // Interval-readable siblings of the point-sampled occupancy gauge: the
    // cumulative busy integral, the cumulative waiter integral, and the
    // static capacity. Differencing the counters across recorder ticks gives
    // alias-free per-interval busy fractions and mean queue depths — the
    // capacity plane's raw feed.
    auto expose = [this, &in_use](sim::Resource& r, const std::string& dev,
                                  const std::string& engine) {
      const metrics::Labels labels{{"device", dev}, {"engine", engine}};
      registry_->gauge_fn("hw_resource_in_use", labels, in_use(r));
      registry_->counter_fn("hw_resource_busy_seconds_total", labels,
                            [&r] { return r.busy_seconds_total(); });
      registry_->counter_fn("hw_resource_queue_seconds_total", labels,
                            [&r] { return r.queue_seconds_total(); });
      registry_->gauge_fn("hw_resource_capacity", labels,
                          [&r] { return static_cast<double>(r.capacity()); });
    };
    expose(cpu_.cores(), "cpu", "cores");
    expose(cpu_.preproc_workers(), "cpu", "preproc_workers");
    expose(host_link_, "host", "pcie");
    for (auto& gpu_ptr : gpus_) {
      GpuModel& g = *gpu_ptr;
      const std::string dev = "gpu" + std::to_string(g.index());
      expose(g.compute(), dev, "compute");
      expose(g.preproc(), dev, "preproc");
      expose(g.copy_h2d(), dev, "copy_h2d");
      expose(g.copy_d2h(), dev, "copy_d2h");
      GpuMemoryStager& st = g.stager();
      registry_->gauge_fn("gpu_staging_resident_bytes", {{"device", dev}},
                          [&st] { return static_cast<double>(st.resident_bytes()); });
      registry_->gauge_fn("gpu_staging_staged_buffers", {{"device", dev}},
                          [&st] { return static_cast<double>(st.staged_count()); });
      registry_->counter_fn("gpu_staging_evictions_total", {{"device", dev}},
                            [&st] { return static_cast<double>(st.evictions()); });
      registry_->counter_fn("gpu_staging_reloaded_bytes_total", {{"device", dev}},
                            [&st] { return static_cast<double>(st.reloaded_bytes()); });
    }
  }

  sim::Simulator& sim_;
  Calibration calib_;
  const sim::FaultPlan* faults_ = nullptr;
  metrics::Registry* registry_ = nullptr;
  CpuModel cpu_;
  sim::Resource host_link_;
  std::vector<std::unique_ptr<GpuModel>> gpus_;
};

}  // namespace serve::hw
