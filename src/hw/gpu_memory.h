// GPU staging-memory model with LRU eviction.
//
// The paper (Section 4.3) postulates that the GPU-preprocessing throughput
// decline at very high concurrency comes from preprocessed inputs being
// "temporarily ousted from the GPU memory, necessitating a subsequent
// reload". This class implements exactly that hypothesis: staged buffers
// live in a fixed budget; overflow evicts the least-recently-staged resident
// buffer, and claiming an evicted buffer reports how many bytes must be
// re-uploaded over PCIe.
#pragma once

#include <cstdint>
#include <list>
#include <stdexcept>
#include <unordered_map>

namespace serve::hw {

class GpuMemoryStager {
 public:
  using Handle = std::uint64_t;

  explicit GpuMemoryStager(std::int64_t budget_bytes) : budget_(budget_bytes) {
    if (budget_bytes <= 0) throw std::invalid_argument("GpuMemoryStager: budget must be positive");
  }

  /// Stages a buffer of `bytes`, evicting older resident buffers if needed.
  /// Buffers larger than the whole budget are staged as immediately evicted
  /// (they will always pay the reload).
  Handle stage(std::int64_t bytes) {
    if (bytes < 0) throw std::invalid_argument("GpuMemoryStager: negative size");
    const Handle h = next_handle_++;
    const bool fits = bytes <= budget_;
    if (fits) {
      while (resident_bytes_ + bytes > budget_ && !lru_.empty()) evict_oldest();
    }
    const bool resident = fits && resident_bytes_ + bytes <= budget_;
    auto it = entries_.emplace(h, Entry{bytes, resident, lru_.end()}).first;
    if (resident) {
      resident_bytes_ += bytes;
      lru_.push_back(h);
      it->second.lru_pos = std::prev(lru_.end());
    } else {
      ++evictions_;  // staged already spilled
    }
    return h;
  }

  /// Consumes a staged buffer; returns the number of bytes that must be
  /// re-uploaded (0 when still resident).
  std::int64_t claim(Handle h) {
    auto it = entries_.find(h);
    if (it == entries_.end()) throw std::logic_error("GpuMemoryStager: unknown handle");
    const Entry e = it->second;
    remove(it);
    if (!e.resident) reloaded_bytes_ += e.bytes;
    return e.resident ? 0 : e.bytes;
  }

  /// Drops a staged buffer without using it.
  void release(Handle h) {
    auto it = entries_.find(h);
    if (it == entries_.end()) throw std::logic_error("GpuMemoryStager: unknown handle");
    remove(it);
  }

  /// Changes the staging budget at runtime (fault injection: a shrink forces
  /// an eviction storm until residency fits; a restore re-admits nothing
  /// retroactively — evicted buffers stay evicted until re-staged).
  void set_budget(std::int64_t budget_bytes) {
    if (budget_bytes <= 0) throw std::invalid_argument("GpuMemoryStager: budget must be positive");
    budget_ = budget_bytes;
    while (resident_bytes_ > budget_ && !lru_.empty()) evict_oldest();
  }

  [[nodiscard]] std::int64_t budget_bytes() const noexcept { return budget_; }
  [[nodiscard]] std::int64_t resident_bytes() const noexcept { return resident_bytes_; }
  [[nodiscard]] std::size_t staged_count() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  /// Cumulative bytes re-uploaded because the claimed buffer had been
  /// evicted — the PCIe tax the Fig. 5 decline hypothesis predicts.
  [[nodiscard]] std::int64_t reloaded_bytes() const noexcept { return reloaded_bytes_; }

 private:
  struct Entry {
    std::int64_t bytes;
    bool resident;
    std::list<Handle>::iterator lru_pos;
  };

  void evict_oldest() {
    const Handle victim = lru_.front();
    lru_.pop_front();
    auto it = entries_.find(victim);
    it->second.resident = false;
    it->second.lru_pos = lru_.end();
    resident_bytes_ -= it->second.bytes;
    ++evictions_;
  }

  void remove(std::unordered_map<Handle, Entry>::iterator it) {
    if (it->second.resident) {
      resident_bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_pos);
    }
    entries_.erase(it);
  }

  std::int64_t budget_;
  std::int64_t resident_bytes_ = 0;
  Handle next_handle_ = 1;
  std::uint64_t evictions_ = 0;
  std::int64_t reloaded_bytes_ = 0;
  std::list<Handle> lru_;
  std::unordered_map<Handle, Entry> entries_;
};

}  // namespace serve::hw
