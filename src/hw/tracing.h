// Platform-level tracing: streams every device engine's occupancy into a
// TraceRecorder as Chrome-trace counters.
#pragma once

#include <string>

#include "hw/devices.h"
#include "sim/trace.h"

namespace serve::hw {

namespace detail {

inline void attach_counter(sim::Simulator& sim, sim::TraceRecorder& trace, sim::Resource& res,
                           std::string track) {
  trace.counter(track, 0.0, sim.now());
  res.set_change_observer([&sim, &trace, track](std::size_t in_use) {
    trace.counter(track, static_cast<double>(in_use), sim.now());
  });
}

}  // namespace detail

/// Attaches occupancy counters for every engine of the platform. The
/// recorder must outlive the platform's simulation activity.
inline void attach_tracer(Platform& platform, sim::TraceRecorder& trace) {
  auto& sim = platform.sim();
  detail::attach_counter(sim, trace, platform.cpu().cores(), "cpu.cores");
  detail::attach_counter(sim, trace, platform.cpu().preproc_workers(), "cpu.preproc_workers");
  detail::attach_counter(sim, trace, platform.host_link(), "pcie.host");
  for (std::size_t i = 0; i < platform.gpu_count(); ++i) {
    const std::string prefix = "gpu" + std::to_string(i) + ".";
    GpuModel& g = platform.gpu(i);
    detail::attach_counter(sim, trace, g.compute(), prefix + "compute");
    detail::attach_counter(sim, trace, g.preproc(), prefix + "preproc");
    detail::attach_counter(sim, trace, g.copy_h2d(), prefix + "copy_h2d");
    detail::attach_counter(sim, trace, g.copy_d2h(), prefix + "copy_d2h");
  }
}

}  // namespace serve::hw
