// Utilization-integrated energy model (paper Fig. 8).
#pragma once

#include "hw/devices.h"
#include "metrics/energy_accumulator.h"
#include "sim/time.h"

namespace serve::hw {

/// Energy consumed by a Platform over an observation window.
struct EnergyReport {
  double cpu_joules = 0.0;
  double gpu_joules = 0.0;
  [[nodiscard]] double total_joules() const noexcept { return cpu_joules + gpu_joules; }
};

/// Computes energy from the time-weighted busy integrals of every device
/// engine: E = idle_power * elapsed + sum_engine active_power * busy_share.
///
/// Call after a measurement window; resource stats should have been reset at
/// the window start (Resource::reset_stats).
[[nodiscard]] inline EnergyReport measure_energy(Platform& platform, sim::Time window_start,
                                                 sim::Time window_end) {
  const PowerCalib& p = platform.calib().power;
  const double elapsed = sim::to_seconds(window_end - window_start);
  if (elapsed <= 0.0) return {};

  EnergyReport report;
  // CPU: package idle + per-busy-core active power. Preprocessing workers
  // run on physical cores, so both pools contribute core-seconds.
  const double core_seconds = (platform.cpu().cores().usage_integral_ns() +
                               platform.cpu().preproc_workers().usage_integral_ns()) *
                              1e-9;
  report.cpu_joules = p.cpu_idle_w * elapsed + p.cpu_core_active_w * core_seconds;

  for (std::size_t i = 0; i < platform.gpu_count(); ++i) {
    GpuModel& g = platform.gpu(i);
    const double compute_busy_s = g.compute().usage_integral_ns() * 1e-9;
    // Preprocessing power scales with pipeline-pool utilization.
    const double preproc_busy_s =
        g.preproc().usage_integral_ns() * 1e-9 / static_cast<double>(g.preproc().capacity());
    const double copy_busy_s =
        (g.copy_h2d().usage_integral_ns() + g.copy_d2h().usage_integral_ns()) * 1e-9;
    const double stall_busy_s = g.stall().usage_integral_ns() * 1e-9;
    report.gpu_joules += p.gpu_idle_w * elapsed + p.gpu_compute_active_w * compute_busy_s +
                         p.gpu_preproc_active_w * preproc_busy_s + p.pcie_active_w * copy_busy_s +
                         p.gpu_stall_w * stall_busy_s;
  }
  return report;
}

}  // namespace serve::hw
