// Calibration constants for the simulated serving testbed.
//
// The paper's measurements come from a dedicated node with a 13th-gen Intel
// i9-13900K and an NVIDIA GeForce RTX 4090 running Triton Inference Server
// with TensorRT, and DALI/nvJPEG for GPU preprocessing (paper Section 2.3,
// footnote 2). We reproduce that testbed as an analytic device model; every
// constant below is either (a) taken from a public datasheet, (b) back-solved
// from a number the paper reports, or (c) a tuning knob whose value was fit
// so the figure-level *shapes* match (see DESIGN.md Section 5 for the fit
// order). Experiments may tweak individual fields; tests pin the defaults.
#pragma once

#include <cstdint>

namespace serve::hw {

/// Host CPU (i9-13900K-like) constants.
struct CpuCalib {
  int cores = 24;  ///< 8 P + 16 E cores presented as one pool

  /// Preprocessing worker pool size in the *tuned* server configuration
  /// (the paper tunes "the number of preprocessing and inference processes";
  /// remaining cores serve the web stack and scheduler).
  int preproc_workers = 24;

  // Raw single-thread image-processing library rates (libjpeg-turbo-class),
  // used directly by the Fig. 3 "python loop" baseline. Back-solved from
  // Fig. 3's ~431 img/s PyTorch-loop throughput for the medium image.
  double decode_mpix_per_s = 190e6;      ///< JPEG Huffman+IDCT on one worker
  double resize_mpix_per_s = 1000e6;     ///< bilinear resample, source pixels
  double normalize_mpix_per_s = 1200e6;  ///< uint8 -> fp32 + mean/std
  double preproc_fixed_s = 50e-6;        ///< per-image dispatch into a worker

  /// Slowdown of the in-server (Triton python-backend style) preprocessing
  /// path relative to the raw library loop: serialization, per-request
  /// tensor packaging, interpreter overhead. Back-solved from Fig. 6:
  /// medium image CPU preprocessing ~3.3 ms => 56% zero-load share.
  double server_preproc_factor = 2.9;

  /// Software video decode (H.264-class) on one worker, in decoded pixels
  /// per second. Used by the video-classification pipeline the paper's
  /// introduction motivates.
  double video_decode_pix_per_s = 160e6;

  /// Host-side request handling (HTTP parse, protobuf, response) per request.
  double ingest_s = 250e-6;
  double postprocess_s = 100e-6;

  /// Non-overlapped per-image cost of the CPU-preprocessing path's ensemble
  /// hop: the python-backend handoff into the inference runtime serializes
  /// (GIL + per-request packaging) with batch dispatch. The PCIe copy itself
  /// is double-buffered behind the previous batch's compute, so this is a
  /// flat per-image synchronization cost, independent of tensor size.
  /// Back-solved so the CPU-preproc end-to-end plateau sits visibly below
  /// the GPU-preproc plateau in Fig. 5 while big models keep near-zero
  /// GPU-preprocessing gain in Fig. 4.
  double staging_per_image_s = 120e-6;
};

/// Accelerator (RTX 4090-like) constants.
struct GpuCalib {
  // --- inference ---
  /// Effective tensor throughput of TensorRT at large batch. Back-solved
  /// from Fig. 3's ~1600+ img/s for ViT-Base (17.6 GFLOPs): 17.6e9 * 2000/s
  /// = 35.2 TFLOP/s sustained (about 11% of the 4090's dense fp16 peak —
  /// typical for transformer inference).
  double effective_flops = 35.2e12;

  /// Small-batch efficiency: eff(b) = b / (b + batch_half_life); batch 1
  /// runs at 25% of sustained throughput, matching a ~2.2 ms zero-load
  /// ViT-Base TensorRT latency.
  double batch_half_life = 3.0;

  double kernel_launch_s = 120e-6;  ///< per-batch launch + binding overhead

  /// Backend derating vs TensorRT (Fig. 3 ladder): ONNX Runtime and eager
  /// PyTorch sustain a fraction of TRT's effective FLOP/s.
  double onnx_factor = 0.62;
  double pytorch_factor = 0.40;

  // --- DALI/nvJPEG-style batched GPU preprocessing ---
  int preproc_pipelines = 6;          ///< concurrent DALI pipeline instances
  double dali_batch_fixed_s = 2.2e-3; ///< per-batch pipeline launch chain
  double dali_image_fixed_s = 350e-6; ///< per-image decode setup
  /// nvJPEG's dedicated hardware decoder handles common image sizes; very
  /// large images exceed its limits and fall back to the slower SM-based
  /// decode path (the piecewise rate is what makes the paper's large image
  /// dominate preprocessing even on the GPU).
  double gpu_hw_decode_pix_per_s = 2.5e9;
  double gpu_sm_decode_pix_per_s = 0.55e9;
  std::int64_t hw_decoder_max_pixels = 4'000'000;
  double gpu_resize_pix_per_s = 8e9;

  // --- NVDEC-style hardware video decoder (separate fixed-function engine) ---
  double nvdec_pix_per_s = 1.2e9;     ///< sustained decode rate
  double nvdec_clip_init_s = 0.8e-3;  ///< per-clip session setup

  /// Fraction of inference throughput lost while GPU preprocessing shares
  /// the SMs (source of the small *negative* GPU-preproc gains in Fig. 4).
  double preproc_compute_contention = 0.03;

  // --- memory ---
  std::int64_t memory_bytes = 24LL << 30;  ///< VRAM (RTX 4090: 24 GB)
  /// Budget for staged request buffers after weights/context/DALI pools;
  /// exceeding it triggers the eviction+reload behaviour the paper
  /// postulates for the high-concurrency decline in Fig. 5.
  std::int64_t staging_budget_bytes = 4LL << 30;
};

/// PCIe interconnect constants.
struct PcieCalib {
  double gpu_link_bytes_per_s = 7.9e9;  ///< effective per-GPU rate (pageable-copy path)
  double host_agg_bytes_per_s = 6e9;    ///< host-side aggregate (shared switch
                                        ///< + pinned-staging rate); caps
                                        ///< multi-GPU feeding in Fig. 9
  double per_transfer_fixed_s = 15e-6;  ///< doorbell + descriptor setup
};

/// Power-state constants for the energy model (Fig. 8). Absolute values are
/// datasheet-order-of-magnitude; the figure's claims are orderings.
struct PowerCalib {
  double cpu_idle_w = 20.0;        ///< package idle
  double cpu_core_active_w = 5.5;  ///< per fully-busy core
  double gpu_idle_w = 35.0;  ///< server card idles higher than desktop
  double gpu_compute_active_w = 300.0;  ///< inference engine fully busy
  double gpu_preproc_active_w = 45.0;   ///< DALI pipelines fully busy (decode
                                        ///< rides the low-power HW decoder)
  /// Clocked-up-but-stalled power: the GPU sits at boost clocks while the
  /// host-side ensemble hop blocks the pipeline. This is the "lower device
  /// utilization" energy the paper attributes to CPU preprocessing (Fig. 8).
  double gpu_stall_w = 180.0;
  double pcie_active_w = 10.0;          ///< per-GPU link while transferring
};

/// Serving-runtime constants (Triton-like scheduler behaviour).
struct ServingCalib {
  /// Host-side gap between dispatched batches on the GPU-preprocessing path
  /// (on-device handoff, CUDA graph launch).
  double gpu_path_batch_gap_s = 150e-6;
  /// Same gap on the CPU-preprocessing path (python-backend ensemble hop);
  /// per-image staging is charged separately via CpuCalib.
  double cpu_path_batch_gap_s = 350e-6;
};

/// Message-broker constants (Fig. 11). Back-solved from the paper's 125%
/// throughput gap, 67% latency gap, and 71%/6% broker latency shares.
struct BrokerCalib {
  // Apache Kafka (disk-backed log, durable writes: fsync per message on a
  // single in-order partition — the prior-work deployment).
  double kafka_publish_service_s = 2.25e-3;  ///< broker CPU + fsync per message
  double kafka_consume_latency_s = 180e-6;   ///< poll + fetch handoff
  int kafka_io_threads = 1;                  ///< single partition, in-order

  // Redis (in-memory, same host, single-threaded event loop).
  double redis_publish_service_s = 60e-6;
  double redis_consume_latency_s = 60e-6;
  int redis_io_threads = 1;

  /// Per-frame producer/consumer synchronization bubble the brokered
  /// deployments add to the GPU pipeline (two processes sharing one GPU).
  double pipeline_sync_s = 1.6e-3;
};

/// Complete calibration bundle.
struct Calibration {
  CpuCalib cpu{};
  GpuCalib gpu{};
  PcieCalib pcie{};
  PowerCalib power{};
  ServingCalib serving{};
  BrokerCalib broker{};
};

/// The tuned testbed used for all paper-figure experiments.
[[nodiscard]] inline Calibration default_calibration() { return Calibration{}; }

}  // namespace serve::hw
