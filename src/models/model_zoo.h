// Descriptors for the computer-vision DNNs the paper benchmarks.
//
// The paper profiles "a large number of computer vision DNNs from
// HuggingFace" (Fig. 4) spanning classification, segmentation, detection and
// depth estimation, plus the Faster R-CNN -> FaceNet pipeline of Section 4.7.
// We describe each model by its published compute/parameter footprint; the
// simulator turns FLOPs into batch latency through the calibrated GPU model.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "hw/calibration.h"

namespace serve::models {

enum class Task : std::uint8_t {
  kClassification,
  kSegmentation,
  kDetection,
  kDepthEstimation,
  kFaceIdentification,
};

[[nodiscard]] constexpr std::string_view task_name(Task t) noexcept {
  switch (t) {
    case Task::kClassification: return "classification";
    case Task::kSegmentation: return "segmentation";
    case Task::kDetection: return "detection";
    case Task::kDepthEstimation: return "depth-estimation";
    case Task::kFaceIdentification: return "face-identification";
  }
  return "?";
}

/// Model-execution backend (the Fig. 3 software ladder).
enum class Backend : std::uint8_t { kPyTorch, kOnnxRuntime, kTensorRT };

[[nodiscard]] constexpr std::string_view backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::kPyTorch: return "pytorch";
    case Backend::kOnnxRuntime: return "onnxruntime";
    case Backend::kTensorRT: return "tensorrt";
  }
  return "?";
}

/// Sustained-throughput derating of a backend relative to TensorRT.
[[nodiscard]] constexpr double backend_factor(const hw::GpuCalib& gpu, Backend b) noexcept {
  switch (b) {
    case Backend::kPyTorch: return gpu.pytorch_factor;
    case Backend::kOnnxRuntime: return gpu.onnx_factor;
    case Backend::kTensorRT: return 1.0;
  }
  return 1.0;
}

/// Static description of one deployable DNN.
struct ModelDesc {
  std::string_view name;        ///< HuggingFace-style identifier
  Task task{};
  double gflops = 0.0;          ///< forward-pass compute per image
  double params_m = 0.0;        ///< parameters, millions
  int input_side = 224;         ///< square network input resolution
  std::int64_t output_bytes = 4000;  ///< logits / boxes / maps returned
  int max_batch = 64;           ///< compiled engine's maximum batch size
  /// Host-side postprocessing per image (argmax is trivial for classifiers;
  /// NMS / mask decoding / depth re-projection are not).
  double postprocess_cpu_s = 100e-6;

  [[nodiscard]] constexpr double flops() const noexcept { return gflops * 1e9; }
  [[nodiscard]] constexpr std::int64_t input_tensor_bytes() const noexcept {
    return static_cast<std::int64_t>(input_side) * input_side * 3 * 4;  // fp32 CHW
  }
};

/// The Fig. 4 sweep: 16 models spanning 0.3 .. 180 GFLOPs across the tasks
/// named in the paper's abstract. GFLOPs/params are the publicly documented
/// values for the HuggingFace checkpoints (rounded).
[[nodiscard]] std::span<const ModelDesc> zoo() noexcept;

/// Looks a model up by name; throws std::out_of_range if absent.
[[nodiscard]] const ModelDesc& find_model(std::string_view name);

// Named accessors for the models individual experiments rely on.
[[nodiscard]] const ModelDesc& vit_base() noexcept;        ///< ViT-Base/16, 17.6 GF
[[nodiscard]] const ModelDesc& resnet50() noexcept;        ///< ResNet-50, 4.1 GF
[[nodiscard]] const ModelDesc& tiny_vit() noexcept;        ///< TinyViT-5M, 1.3 GF
[[nodiscard]] const ModelDesc& faster_rcnn() noexcept;     ///< detection stage (Sec. 4.7)
[[nodiscard]] const ModelDesc& facenet() noexcept;         ///< identification stage (Sec. 4.7)

}  // namespace serve::models
