#include "models/model_zoo.h"

#include <array>
#include <stdexcept>
#include <string>

namespace serve::models {
namespace {

// GFLOPs and parameter counts follow the public model cards / timm tables
// for the 224x224 checkpoints (DETR/Faster R-CNN at their detection input).
constexpr std::array<ModelDesc, 16> kZoo{{
    {"mobilenet-v2", Task::kClassification, 0.31, 3.5, 224, 4000, 128},
    {"efficientnet-b0", Task::kClassification, 0.39, 5.3, 224, 4000, 128},
    {"tinyvit-5m", Task::kClassification, 1.30, 5.4, 224, 4000, 128},
    {"facenet-inception-resnet", Task::kFaceIdentification, 1.43, 23.5, 160, 512, 128},
    {"resnet-18", Task::kClassification, 1.82, 11.7, 224, 4000, 128},
    {"mobilevit-small", Task::kClassification, 2.03, 5.6, 256, 4000, 128},
    {"resnet-50", Task::kClassification, 4.09, 25.6, 224, 4000, 64},
    {"convnext-tiny", Task::kClassification, 4.47, 28.6, 224, 4000, 64},
    {"swin-tiny", Task::kClassification, 4.51, 28.3, 224, 4000, 64},
    {"deit-small", Task::kClassification, 4.61, 22.1, 224, 4000, 64},
    {"segformer-b2", Task::kSegmentation, 6.20, 27.4, 512, 262144, 32, 4e-3},
    {"vit-base", Task::kClassification, 17.58, 86.6, 224, 4000, 64},
    {"convnext-base", Task::kClassification, 15.38, 88.6, 224, 4000, 64},
    {"dpt-hybrid-midas", Task::kDepthEstimation, 57.30, 123.0, 384, 589824, 16, 6e-3},
    {"detr-resnet-50", Task::kDetection, 86.00, 41.3, 800, 8000, 8, 8e-3},
    {"faster-rcnn-resnet50", Task::kDetection, 180.00, 41.8, 800, 8000, 8, 12e-3},
}};

}  // namespace

std::span<const ModelDesc> zoo() noexcept { return kZoo; }

const ModelDesc& find_model(std::string_view name) {
  for (const ModelDesc& m : kZoo) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("unknown model: " + std::string(name));
}

const ModelDesc& vit_base() noexcept { return kZoo[11]; }
const ModelDesc& resnet50() noexcept { return kZoo[6]; }
const ModelDesc& tiny_vit() noexcept { return kZoo[2]; }
const ModelDesc& faster_rcnn() noexcept { return kZoo[15]; }
const ModelDesc& facenet() noexcept { return kZoo[3]; }

}  // namespace serve::models
