// Streaming scalar statistics (Welford's online algorithm).
//
// Used throughout ServeScope to aggregate per-request quantities (latency,
// batch size, energy) without storing every sample.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace serve::metrics {

/// Accumulates count / mean / variance / min / max of a stream of doubles.
/// All operations are O(1); merging two accumulators is supported so that
/// per-worker statistics can be combined.
class StatAccumulator {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const StatAccumulator& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  void reset() noexcept { *this = StatAccumulator{}; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace serve::metrics
