#include "metrics/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace serve::metrics {

Histogram::Histogram(const Options& opts) : opts_(opts) {
  if (!(opts_.min_value > 0.0) || !(opts_.max_value > opts_.min_value)) {
    throw std::invalid_argument("Histogram: require 0 < min_value < max_value");
  }
  if (!(opts_.growth > 1.0)) {
    throw std::invalid_argument("Histogram: growth factor must exceed 1");
  }
  log_growth_inv_ = 1.0 / std::log(opts_.growth);
  const double span = std::log(opts_.max_value / opts_.min_value) * log_growth_inv_;
  // +2: one underflow bucket in front, one overflow bucket at the back.
  counts_.assign(static_cast<std::size_t>(std::ceil(span)) + 2, 0);
  if (opts_.track_exemplars) exemplars_.assign(counts_.size(), Exemplar{});
}

std::size_t Histogram::bucket_index(double value) const noexcept {
  if (value < opts_.min_value) return 0;
  if (value >= opts_.max_value) return counts_.size() - 1;
  const double pos = std::log(value / opts_.min_value) * log_growth_inv_;
  const auto idx = static_cast<std::size_t>(pos) + 1;
  return std::min(idx, counts_.size() - 2);
}

double Histogram::bucket_lower(std::size_t i) const noexcept {
  if (i == 0) return 0.0;
  return opts_.min_value * std::pow(opts_.growth, static_cast<double>(i - 1));
}

double Histogram::bucket_upper(std::size_t i) const noexcept {
  if (i + 1 >= counts_.size()) {
    // Overflow bucket: the observed max when it genuinely exceeds the
    // layout, else one more geometric step — exported `le` edges must stay
    // strictly ascending even when max_value itself lands here.
    return std::max(stats_.max(), bucket_lower(i) * opts_.growth);
  }
  return opts_.min_value * std::pow(opts_.growth, static_cast<double>(i));
}

void Histogram::add(double value) noexcept {
  ++counts_[bucket_index(value)];
  stats_.add(value);
}

void Histogram::add(double value, std::uint64_t trace_id) noexcept {
  const std::size_t idx = bucket_index(value);
  ++counts_[idx];
  stats_.add(value);
  if (!exemplars_.empty() && trace_id != 0) exemplars_[idx] = {trace_id, value};
}

void Histogram::merge(const Histogram& other) {
  // Bucket i only means the same value range when every layout parameter
  // matches; equal bucket *counts* are not enough (e.g. [1e-6, 1e3] and
  // [1e-5, 1e4] share a ratio, hence a size, but not edges).
  if (opts_.min_value != other.opts_.min_value || opts_.max_value != other.opts_.max_value ||
      opts_.growth != other.opts_.growth || counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: incompatible layouts");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  // Exemplars are last-write-wins per bucket: `other`'s (when present) is the
  // more recent witness from the merging side, so it takes precedence.
  if (!exemplars_.empty() && !other.exemplars_.empty()) {
    for (std::size_t i = 0; i < exemplars_.size(); ++i) {
      if (other.exemplars_[i].trace_id != 0) exemplars_[i] = other.exemplars_[i];
    }
  }
  stats_.merge(other.stats_);
}

double Histogram::quantile(double q) const noexcept {
  if (stats_.count() == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<double>(stats_.count()) * q;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = counts_[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      // Interpolate within the bucket; clamp to observed extrema so that
      // quantile(0) >= min and quantile(1) <= max exactly.
      const double frac = (target - static_cast<double>(cum)) / static_cast<double>(c);
      const double hi = std::min(bucket_upper(i), stats_.max());
      // The overflow bucket's lower edge is min_value * growth^ceil(span),
      // which can exceed max_value: a value in [max_value, that edge) then
      // yields lo > hi, making the interpolation *decreasing* in q and the
      // result overshoot the observed max. Clamp lo to hi so the bucket
      // degenerates to its (correct) upper bound instead.
      const double lo = std::min(std::max(bucket_lower(i), stats_.min()), hi);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum += c;
  }
  return stats_.max();
}

std::vector<Histogram::Bucket> Histogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    Bucket b{bucket_lower(i), bucket_upper(i), counts_[i], 0, 0.0};
    if (!exemplars_.empty()) {
      b.exemplar_trace_id = exemplars_[i].trace_id;
      b.exemplar_value = exemplars_[i].value;
    }
    out.push_back(b);
  }
  return out;
}

double Histogram::count_at_or_below(double value) const noexcept {
  if (stats_.count() == 0) return 0.0;
  // Everything strictly below the straddling bucket counts in full; the
  // straddling bucket contributes linearly. bucket_index() pins the split
  // point so only that one bucket's edges are ever computed — this runs on
  // the alert engine's per-tick path.
  const std::size_t split = bucket_index(value);
  double below = 0.0;
  for (std::size_t i = 0; i < split; ++i) below += static_cast<double>(counts_[i]);
  if (counts_[split] != 0) {
    const double lo = bucket_lower(split);
    const double hi = bucket_upper(split);
    const double width = hi - lo;
    const double frac = width > 0.0 ? (value - lo) / width : (value >= hi ? 1.0 : 0.0);
    below += static_cast<double>(counts_[split]) * std::clamp(frac, 0.0, 1.0);
  }
  return below;
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  std::fill(exemplars_.begin(), exemplars_.end(), Exemplar{});
  stats_.reset();
}

}  // namespace serve::metrics
