#include "metrics/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace serve::metrics {

Histogram::Histogram(const Options& opts) : opts_(opts) {
  if (!(opts_.min_value > 0.0) || !(opts_.max_value > opts_.min_value)) {
    throw std::invalid_argument("Histogram: require 0 < min_value < max_value");
  }
  if (!(opts_.growth > 1.0)) {
    throw std::invalid_argument("Histogram: growth factor must exceed 1");
  }
  log_growth_inv_ = 1.0 / std::log(opts_.growth);
  const double span = std::log(opts_.max_value / opts_.min_value) * log_growth_inv_;
  // +2: one underflow bucket in front, one overflow bucket at the back.
  counts_.assign(static_cast<std::size_t>(std::ceil(span)) + 2, 0);
}

std::size_t Histogram::bucket_index(double value) const noexcept {
  if (value < opts_.min_value) return 0;
  if (value >= opts_.max_value) return counts_.size() - 1;
  const double pos = std::log(value / opts_.min_value) * log_growth_inv_;
  const auto idx = static_cast<std::size_t>(pos) + 1;
  return std::min(idx, counts_.size() - 2);
}

double Histogram::bucket_lower(std::size_t i) const noexcept {
  if (i == 0) return 0.0;
  return opts_.min_value * std::pow(opts_.growth, static_cast<double>(i - 1));
}

double Histogram::bucket_upper(std::size_t i) const noexcept {
  if (i + 1 >= counts_.size()) {
    // Overflow bucket: the observed max when it genuinely exceeds the
    // layout, else one more geometric step — exported `le` edges must stay
    // strictly ascending even when max_value itself lands here.
    return std::max(stats_.max(), bucket_lower(i) * opts_.growth);
  }
  return opts_.min_value * std::pow(opts_.growth, static_cast<double>(i));
}

void Histogram::add(double value) noexcept {
  ++counts_[bucket_index(value)];
  stats_.add(value);
}

void Histogram::merge(const Histogram& other) {
  // Bucket i only means the same value range when every layout parameter
  // matches; equal bucket *counts* are not enough (e.g. [1e-6, 1e3] and
  // [1e-5, 1e4] share a ratio, hence a size, but not edges).
  if (opts_.min_value != other.opts_.min_value || opts_.max_value != other.opts_.max_value ||
      opts_.growth != other.opts_.growth || counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: incompatible layouts");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  stats_.merge(other.stats_);
}

double Histogram::quantile(double q) const noexcept {
  if (stats_.count() == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<double>(stats_.count()) * q;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = counts_[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      // Interpolate within the bucket; clamp to observed extrema so that
      // quantile(0) >= min and quantile(1) <= max exactly.
      const double frac = (target - static_cast<double>(cum)) / static_cast<double>(c);
      const double hi = std::min(bucket_upper(i), stats_.max());
      // The overflow bucket's lower edge is min_value * growth^ceil(span),
      // which can exceed max_value: a value in [max_value, that edge) then
      // yields lo > hi, making the interpolation *decreasing* in q and the
      // result overshoot the observed max. Clamp lo to hi so the bucket
      // degenerates to its (correct) upper bound instead.
      const double lo = std::min(std::max(bucket_lower(i), stats_.min()), hi);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum += c;
  }
  return stats_.max();
}

std::vector<Histogram::Bucket> Histogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out.push_back({bucket_lower(i), bucket_upper(i), counts_[i]});
  }
  return out;
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  stats_.reset();
}

}  // namespace serve::metrics
