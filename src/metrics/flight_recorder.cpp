#include "metrics/flight_recorder.h"

#include <chrono>

namespace serve::metrics {

FlightRecorder::FlightRecorder(Registry& registry, Options opts)
    : registry_(registry), opts_(opts) {
  if (opts_.period <= 0) opts_.period = sim::milliseconds(100);
  if (opts_.capacity == 0) opts_.capacity = 1;
  self_time_ = registry_.wall_clock_counter("telemetry_self_seconds_total");
}

void FlightRecorder::start(sim::Simulator& sim) {
  running_ = true;
  start_time_ = sim.now();
  sample(sim.now());
  ++ticks_;
  for (auto& fn : listeners_) fn(sim.now(), ticks_ - 1);
  sim.schedule_after(opts_.period, [this, &sim] { tick(sim); });
}

void FlightRecorder::tick(sim::Simulator& sim) {
  if (!running_) return;  // stopped while this event was pending
  sample(sim.now());
  ++ticks_;
  for (auto& fn : listeners_) fn(sim.now(), ticks_ - 1);
  sim.schedule_after(opts_.period, [this, &sim] { tick(sim); });
}

void FlightRecorder::sample(sim::Time /*now*/) {
  const auto t0 = std::chrono::steady_clock::now();
  registry_.sample_values(scratch_);  // one lock for the whole tick
  const std::size_t n = scratch_.size();
  if (rings_.size() < n) {
    // Instruments registered after start() join mid-flight: their first
    // retained sample is this tick, earlier ticks are simply absent.
    rings_.resize(n);
    for (auto& ring : rings_) {
      if (ring.total == 0 && ring.buf.empty()) ring.first_tick = ticks_;
    }
  }
  // The wall-clock flag is fixed at registration; cache it per index so the
  // steady-state tick never re-reads instrument metadata.
  while (wall_clock_.size() < n) {
    wall_clock_.push_back(registry_.info(wall_clock_.size()).wall_clock ? 1 : 0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (wall_clock_[i] != 0) continue;
    Ring& ring = rings_[i];
    const double v = scratch_[i];
    if (ring.buf.size() < opts_.capacity) {
      ring.buf.push_back(v);
    } else {
      // Overwrite the oldest slot; the ring's logical start advances.
      ring.buf[ring.total % opts_.capacity] = v;
      ++ring.first_tick;
    }
    ++ring.total;
  }
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  self_time_.inc(dt.count());
}

std::vector<FlightRecorder::Series> FlightRecorder::series() const {
  std::vector<Series> out;
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    const auto info = registry_.info(i);
    if (info.wall_clock) continue;
    const Ring& ring = rings_[i];
    Series s;
    s.name = info.name;
    s.labels = info.labels;
    s.type = info.type;
    s.start_tick = ring.first_tick;
    s.total_samples = ring.total;
    if (ring.buf.size() < opts_.capacity) {
      s.samples = ring.buf;
    } else {
      // Unroll the ring: oldest retained sample sits at total % capacity.
      const std::size_t head = static_cast<std::size_t>(ring.total % opts_.capacity);
      s.samples.reserve(ring.buf.size());
      s.samples.insert(s.samples.end(), ring.buf.begin() + static_cast<std::ptrdiff_t>(head),
                       ring.buf.end());
      s.samples.insert(s.samples.end(), ring.buf.begin(),
                       ring.buf.begin() + static_cast<std::ptrdiff_t>(head));
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace serve::metrics
