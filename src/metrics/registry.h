// Unified telemetry registry: typed named instruments with label sets.
//
// The registry is the single naming authority for everything the serving
// stack measures. Components register instruments once (at construction) and
// update them through cheap handles on the hot path:
//
//   - Counter    monotone accumulator (requests, bytes, evictions, retries);
//                relaxed-atomic add, safe from real worker threads;
//   - Gauge      last-value instrument (queue depth, in-flight, budget);
//   - Histogram  log-bucketed distribution (latency, batch size); sim-thread
//                only — the underlying metrics::Histogram is not atomic.
//
// Callback variants (counter_fn / gauge_fn) sample a component's existing
// internal state instead of duplicating it: the flight recorder and the
// exporters evaluate the callback at snapshot time. freeze_callbacks()
// converts them to plain values so a registry can safely outlive the
// components it observed (the experiment runner calls it before tearing the
// platform down).
//
// Disabled-cost contract: every handle is a single pointer; a
// default-constructed handle makes all operations no-ops, so instrumented
// code pays one predictable branch when no registry is attached.
//
// Identity rules (enforced, tested):
//   - one (name, label set) pair maps to exactly one instrument; repeated
//     registration returns the existing one;
//   - a name is bound to one instrument type and one label *key set*
//     forever; re-registering with a different type or different label keys
//     throws (the "label collision" Prometheus forbids).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/histogram.h"

namespace serve::metrics {

/// Label set: key/value pairs ("stage" -> "queue", "device" -> "gpu0").
/// Order-insensitive: the registry canonicalizes by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class InstrumentType : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr std::string_view instrument_type_name(InstrumentType t) noexcept {
  switch (t) {
    case InstrumentType::kCounter: return "counter";
    case InstrumentType::kGauge: return "gauge";
    case InstrumentType::kHistogram: return "histogram";
  }
  return "?";
}

class Registry;

/// Monotone accumulator handle. Thread-safe (relaxed atomic add): real
/// worker pools (codec, file-log broker) update counters concurrently.
class Counter {
 public:
  Counter() = default;
  void inc(double d = 1.0) noexcept {
    if (cell_ != nullptr) cell_->fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept { return cell_ != nullptr; }
  [[nodiscard]] double value() const noexcept {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0.0;
  }

 private:
  friend class Registry;
  explicit Counter(std::atomic<double>* cell) noexcept : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Last-value handle. Thread-safe store/add.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) noexcept {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  void add(double d) noexcept {
    if (cell_ != nullptr) cell_->fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept { return cell_ != nullptr; }
  [[nodiscard]] double value() const noexcept {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0.0;
  }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<double>* cell) noexcept : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Distribution handle. NOT thread-safe — observe() only from the simulation
/// thread (all current histogram instruments are sim-side).
class HistogramHandle {
 public:
  HistogramHandle() = default;
  void observe(double v) noexcept {
    if (hist_ != nullptr) hist_->add(v);
  }
  /// Observe with a trace exemplar (no-op trace_id 0 degrades to observe(v)).
  void observe(double v, std::uint64_t trace_id) noexcept {
    if (hist_ != nullptr) hist_->add(v, trace_id);
  }
  [[nodiscard]] bool enabled() const noexcept { return hist_ != nullptr; }
  [[nodiscard]] const Histogram* get() const noexcept { return hist_; }

 private:
  friend class Registry;
  explicit HistogramHandle(Histogram* h) noexcept : hist_(h) {}
  Histogram* hist_ = nullptr;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // --- registration ----------------------------------------------------------

  Counter counter(std::string name, Labels labels = {});

  /// Counter whose value is wall-clock-derived (telemetry self-overhead):
  /// excluded from flight-recorder series and from JSON/CSV exports by
  /// default so recorded runs stay bit-reproducible.
  Counter wall_clock_counter(std::string name, Labels labels = {});

  Gauge gauge(std::string name, Labels labels = {});

  /// Callback-backed instruments: `fn` is evaluated at sample/snapshot time.
  /// Re-registering the same (name, labels) replaces the callback — a second
  /// experiment run re-binds the instrument to its new component.
  void counter_fn(std::string name, Labels labels, std::function<double()> fn);
  void gauge_fn(std::string name, Labels labels, std::function<double()> fn);

  HistogramHandle histogram(std::string name, Labels labels = {},
                            const Histogram::Options& opts = {});

  // --- snapshotting ----------------------------------------------------------

  struct HistogramBucket {
    double lower = 0.0;
    double upper = 0.0;
    std::uint64_t count = 0;
    std::uint64_t exemplar_trace_id = 0;  ///< 0 = no exemplar retained
    double exemplar_value = 0.0;
  };

  struct InstrumentSnapshot {
    std::string name;
    Labels labels;
    InstrumentType type = InstrumentType::kCounter;
    bool wall_clock = false;
    double value = 0.0;  ///< counter/gauge value; histogram sample count
    // Histogram-only payload (empty otherwise). Buckets carry their exact
    // layout edges so exporters can emit cumulative (`le`) form without
    // re-deriving the geometric layout.
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<HistogramBucket> buckets;  ///< non-empty buckets, ascending
  };

  /// All instruments, in registration order (deterministic).
  [[nodiscard]] std::vector<InstrumentSnapshot> snapshot() const;

  /// Replaces every callback instrument with its current value. Call before
  /// destroying the observed components; afterwards the registry is
  /// self-contained.
  void freeze_callbacks();

  [[nodiscard]] std::size_t size() const;

  // --- flight-recorder access (stable indices, registration order) -----------

  struct InstrumentInfo {
    const std::string& name;
    const Labels& labels;
    InstrumentType type;
    bool wall_clock;
  };
  [[nodiscard]] std::size_t instrument_count() const;
  [[nodiscard]] InstrumentInfo info(std::size_t i) const;
  /// Sampled value of instrument `i` (histograms report their count).
  [[nodiscard]] double current_value(std::size_t i) const;

  /// Bulk read: resizes `out` to instrument_count() and fills every
  /// instrument's sampled value (registration order) under one lock. The
  /// flight recorder's per-tick path — one lock per tick instead of two
  /// per instrument.
  void sample_values(std::vector<double>& out) const;

  /// Looks an instrument up by exact name + labels; nullopt when absent.
  [[nodiscard]] std::optional<InstrumentSnapshot> find(const std::string& name,
                                                      const Labels& labels = {}) const;

  /// Full snapshot of instrument `i` (registration order). The alert
  /// engine's burn-rate rules use this to read histogram buckets on the
  /// flight-recorder cadence without snapshotting the whole registry.
  [[nodiscard]] InstrumentSnapshot snapshot_at(std::size_t i) const;

  /// (total count, samples <= threshold) for histogram instrument `i`;
  /// {0, 0} when `i` is not a histogram. Allocation-free — this is the alert
  /// engine's per-tick burn-rate read, where snapshot_at()'s string/bucket
  /// copies would dominate the engine's self-time.
  [[nodiscard]] std::pair<std::uint64_t, double> histogram_count_below(std::size_t i,
                                                                       double threshold) const;

 private:
  struct Instrument {
    std::string name;
    Labels labels;  ///< sorted by key
    InstrumentType type = InstrumentType::kCounter;
    bool wall_clock = false;
    std::atomic<double> cell{0.0};
    std::function<double()> callback;  ///< overrides cell when set
    std::unique_ptr<Histogram> hist;

    [[nodiscard]] double value() const {
      if (callback) return callback();
      if (type == InstrumentType::kHistogram) return static_cast<double>(hist->count());
      return cell.load(std::memory_order_relaxed);
    }
  };

  Instrument& intern(std::string name, Labels labels, InstrumentType type, bool wall_clock);
  [[nodiscard]] InstrumentSnapshot snapshot_one(const Instrument& ins) const;

  mutable std::mutex mu_;
  // Registration order; linear scans are fine at the dozens-of-instruments
  // scale this registry serves, and the order doubles as the deterministic
  // export/sampling order.
  std::vector<std::unique_ptr<Instrument>> instruments_;
};

}  // namespace serve::metrics
