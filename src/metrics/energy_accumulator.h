// Energy bookkeeping for the CPU/GPU power model (paper Fig. 8).
#pragma once

#include <cstdint>

namespace serve::metrics {

/// Integrates device energy over simulated time and attributes it per image.
///
/// Devices report (power_watts, duration_seconds) chunks as they run; the
/// accumulator splits totals by device class so Fig. 8's stacked CPU/GPU bars
/// can be regenerated.
class EnergyAccumulator {
 public:
  void add_cpu(double watts, double seconds) noexcept { cpu_joules_ += watts * seconds; }
  void add_gpu(double watts, double seconds) noexcept { gpu_joules_ += watts * seconds; }
  void count_image(std::uint64_t n = 1) noexcept { images_ += n; }

  [[nodiscard]] double cpu_joules() const noexcept { return cpu_joules_; }
  [[nodiscard]] double gpu_joules() const noexcept { return gpu_joules_; }
  [[nodiscard]] double total_joules() const noexcept { return cpu_joules_ + gpu_joules_; }
  [[nodiscard]] std::uint64_t images() const noexcept { return images_; }

  [[nodiscard]] double cpu_joules_per_image() const noexcept {
    return images_ ? cpu_joules_ / static_cast<double>(images_) : 0.0;
  }
  [[nodiscard]] double gpu_joules_per_image() const noexcept {
    return images_ ? gpu_joules_ / static_cast<double>(images_) : 0.0;
  }
  [[nodiscard]] double joules_per_image() const noexcept {
    return cpu_joules_per_image() + gpu_joules_per_image();
  }

  void reset() noexcept { *this = EnergyAccumulator{}; }

 private:
  double cpu_joules_ = 0.0;
  double gpu_joules_ = 0.0;
  std::uint64_t images_ = 0;
};

}  // namespace serve::metrics
