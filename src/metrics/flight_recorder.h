// Time-series flight recorder: samples every registry instrument on a fixed
// virtual-time cadence into ring-buffered series.
//
// End-of-window aggregates cannot distinguish "throughput collapsed mid-run"
// from "steady-state bottleneck" — the paper's Fig. 5 claims are temporal
// (queue depth grows toward seconds; GPU-preproc throughput *declines* as
// staging memory thrashes). The recorder turns a run into a trajectory:
// at every tick it evaluates each instrument (counters/gauges read their
// atomic cell or callback; histograms report their sample count) and appends
// the value to a per-instrument ring buffer.
//
// Determinism: ticks run at exact multiples of the period in virtual time on
// the single simulation thread, so two runs with the same seed produce
// bit-identical series. The recorder's own cost is accounted in a wall-clock
// self-time instrument (`telemetry_self_seconds_total`) which is excluded
// from the series and the deterministic exports — measuring yourself must
// not perturb what you measure.
//
// Lifecycle: construct with a registry, start(sim) to begin sampling
// (instruments registered later join mid-flight; earlier ticks back-fill as
// absent, not zero), stop() before draining the simulator — the tick
// re-schedules itself forever, so a drain (`sim.run()`) would never
// terminate with a live recorder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/registry.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace serve::metrics {

class FlightRecorder {
 public:
  struct Options {
    sim::Time period = sim::milliseconds(100);
    std::size_t capacity = 4096;  ///< samples retained per instrument (ring)
  };

  explicit FlightRecorder(Registry& registry) : FlightRecorder(registry, Options{}) {}
  FlightRecorder(Registry& registry, Options opts);

  /// Begins sampling: one sample immediately, then every `period` until
  /// stop(). Must be called from outside the event loop or a sim callback.
  void start(sim::Simulator& sim);

  /// Stops sampling (the pending tick becomes a no-op). Idempotent.
  void stop() noexcept { running_ = false; }

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] sim::Time period() const noexcept { return opts_.period; }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }
  /// Virtual time of tick 0; tick k sampled at start_time() + k * period().
  [[nodiscard]] sim::Time start_time() const noexcept { return start_time_; }

  /// One instrument's retained samples, oldest first. When the ring wrapped,
  /// `start_tick * period` is the virtual time of samples.front().
  struct Series {
    std::string name;
    Labels labels;
    InstrumentType type = InstrumentType::kCounter;
    std::uint64_t start_tick = 0;   ///< tick index of the first retained sample
    std::uint64_t total_samples = 0;  ///< including overwritten ones
    std::vector<double> samples;
  };

  /// All series in registry registration order, wall-clock instruments
  /// excluded (they are nondeterministic by construction).
  [[nodiscard]] std::vector<Series> series() const;

  /// Wall-clock seconds the recorder spent sampling (self-overhead).
  [[nodiscard]] double self_seconds() const noexcept { return self_time_.value(); }

  /// Called after every sample with the virtual time and the tick index just
  /// recorded (tick k sampled at start_time() + k * period()). This is the
  /// evaluation cadence hook the obs::AlertEngine rides: listeners observe a
  /// fully-sampled registry at exact virtual-time multiples, so anything they
  /// derive is as deterministic as the series themselves. Listeners must not
  /// register instruments from inside the callback for the *current* tick
  /// (they would sample starting next tick anyway) and must outlive the
  /// recorder's sampling window.
  using TickListener = std::function<void(sim::Time now, std::uint64_t tick)>;
  void add_tick_listener(TickListener fn) { listeners_.push_back(std::move(fn)); }

 private:
  struct Ring {
    std::uint64_t first_tick = 0;  ///< tick of buf's logically-first sample
    std::uint64_t total = 0;
    std::vector<double> buf;
  };

  void tick(sim::Simulator& sim);
  void sample(sim::Time now);

  Registry& registry_;
  Options opts_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
  sim::Time start_time_ = 0;
  std::vector<Ring> rings_;  ///< index-aligned with registry instruments
  std::vector<double> scratch_;       ///< per-tick bulk-sample buffer (reused)
  std::vector<std::uint8_t> wall_clock_;  ///< cached per-index wall-clock flag
  Counter self_time_;        ///< wall-clock seconds spent in sample()
  std::vector<TickListener> listeners_;
};

}  // namespace serve::metrics
