#include "metrics/export.h"

#include <cassert>
#include <charconv>
#include <cstdio>
#include <cmath>
#include <ostream>
#include <system_error>

#include "sim/time.h"

namespace serve::metrics {

std::string format_double(double v) {
  if (std::isnan(v)) return "null";  // JSON has no NaN; CSV readers cope
  if (std::isinf(v)) return v > 0 ? "1e9999" : "-1e9999";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  assert(res.ec == std::errc());
  return std::string(buf, res.ptr);
}

namespace {

void json_escape(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out << esc;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void json_labels(std::ostream& out, const Labels& labels) {
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    json_escape(out, k);
    out << ':';
    json_escape(out, v);
  }
  out << '}';
}

/// `k=v;k2=v2` — compact single-cell form for CSV.
std::string flat_labels(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

/// RFC 4180 field quoting: cells containing a comma, double quote, CR, or LF
/// are wrapped in quotes with embedded quotes doubled. Label *values* are
/// caller-supplied free text (model names, file paths), so the long-form CSV
/// must not let one hostile value shear the row into extra columns.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Prometheus metric/label names: [a-zA-Z_][a-zA-Z0-9_]*.
std::string prom_name(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

void prom_label_block(std::ostream& out, const Labels& labels, const std::string& extra_key = {},
                      const std::string& extra_val = {}) {
  if (labels.empty() && extra_key.empty()) return;
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << prom_name(k) << "=\"" << v << '"';
  }
  if (!extra_key.empty()) {
    if (!first) out << ',';
    out << extra_key << "=\"" << extra_val << '"';
  }
  out << '}';
}

void json_cell(std::ostream& out, const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    json_escape(out, *s);
  } else if (const auto* d = std::get_if<double>(&cell)) {
    out << format_double(*d);
  } else {
    out << std::get<std::int64_t>(cell);
  }
}

}  // namespace

void TelemetryExport::set_context(std::string key, std::string value) {
  for (auto& [k, v] : context_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  context_.emplace_back(std::move(key), std::move(value));
}

void TelemetryExport::add_table(std::string name, const Table& table) {
  TableCopy copy;
  copy.name = std::move(name);
  copy.headers = table.headers();
  copy.rows.reserve(table.rows());
  for (std::size_t i = 0; i < table.rows(); ++i) copy.rows.push_back(table.row(i));
  tables_.push_back(std::move(copy));
}

void TelemetryExport::capture_series(const FlightRecorder& recorder) {
  series_ = recorder.series();
  series_period_s_ = sim::to_seconds(recorder.period());
  series_start_s_ = sim::to_seconds(recorder.start_time());
  have_series_ = true;
}

std::size_t TelemetryExport::failed_checks() const noexcept {
  std::size_t n = 0;
  for (const auto& c : checks_) n += c.pass ? 0 : 1;
  return n;
}

void TelemetryExport::write_json(std::ostream& out) const {
  out << "{\n  \"schema\": \"servescope-telemetry-v1\",\n  \"context\": {";
  for (std::size_t i = 0; i < context_.size(); ++i) {
    if (i) out << ", ";
    json_escape(out, context_[i].first);
    out << ": ";
    json_escape(out, context_[i].second);
  }
  out << "},\n  \"benchmarks\": [";
  for (std::size_t i = 0; i < benchmarks_.size(); ++i) {
    const auto& b = benchmarks_[i];
    out << (i ? ",\n    " : "\n    ") << "{\"name\": ";
    json_escape(out, b.name);
    out << ", \"real_time\": " << format_double(b.real_time) << ", \"time_unit\": ";
    json_escape(out, b.time_unit);
    for (const auto& [k, v] : b.extras) {
      out << ", ";
      json_escape(out, k);
      out << ": " << format_double(v);
    }
    out << '}';
  }
  out << (benchmarks_.empty() ? "]" : "\n  ]") << ",\n  \"checks\": [";
  for (std::size_t i = 0; i < checks_.size(); ++i) {
    const auto& c = checks_[i];
    out << (i ? ",\n    " : "\n    ") << "{\"claim\": ";
    json_escape(out, c.claim);
    out << ", \"pass\": " << (c.pass ? "true" : "false") << ", \"detail\": ";
    json_escape(out, c.detail);
    out << '}';
  }
  out << (checks_.empty() ? "]" : "\n  ]") << ",\n  \"tables\": [";
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    const auto& t = tables_[i];
    out << (i ? ",\n    " : "\n    ") << "{\"name\": ";
    json_escape(out, t.name);
    out << ", \"headers\": [";
    for (std::size_t j = 0; j < t.headers.size(); ++j) {
      if (j) out << ", ";
      json_escape(out, t.headers[j]);
    }
    out << "], \"rows\": [";
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      out << (r ? ", " : "") << '[';
      for (std::size_t c = 0; c < t.rows[r].size(); ++c) {
        if (c) out << ", ";
        json_cell(out, t.rows[r][c]);
      }
      out << ']';
    }
    out << "]}";
  }
  out << (tables_.empty() ? "]" : "\n  ]") << ",\n  \"instruments\": [";
  bool first = true;
  for (const auto& ins : instruments_) {
    if (ins.wall_clock) continue;  // nondeterministic; Prometheus-only
    out << (first ? "\n    " : ",\n    ") << "{\"name\": ";
    first = false;
    json_escape(out, ins.name);
    out << ", \"labels\": ";
    json_labels(out, ins.labels);
    out << ", \"type\": \"" << instrument_type_name(ins.type) << '"';
    if (ins.type == InstrumentType::kHistogram) {
      out << ", \"count\": " << ins.count << ", \"sum\": " << format_double(ins.sum)
          << ", \"min\": " << format_double(ins.min) << ", \"max\": " << format_double(ins.max)
          << ", \"buckets\": [";
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < ins.buckets.size(); ++i) {
        const auto& b = ins.buckets[i];
        cum += b.count;
        out << (i ? ", " : "") << "{\"le\": " << format_double(b.upper)
            << ", \"count\": " << cum;
        if (b.exemplar_trace_id != 0) {
          // Last causal witness for this latency band: lets a reader jump
          // from an SLO tail bucket straight to the trace that landed there.
          out << ", \"exemplar\": {\"trace_id\": " << b.exemplar_trace_id
              << ", \"value\": " << format_double(b.exemplar_value) << '}';
        }
        out << '}';
      }
      out << ']';
    } else {
      out << ", \"value\": " << format_double(ins.value);
    }
    out << '}';
  }
  out << (first ? "]" : "\n  ]");
  if (have_series_) {
    out << ",\n  \"series\": {\"period_s\": " << format_double(series_period_s_)
        << ", \"start_s\": " << format_double(series_start_s_) << ", \"points\": [";
    for (std::size_t i = 0; i < series_.size(); ++i) {
      const auto& s = series_[i];
      out << (i ? ",\n    " : "\n    ") << "{\"name\": ";
      json_escape(out, s.name);
      out << ", \"labels\": ";
      json_labels(out, s.labels);
      out << ", \"start_tick\": " << s.start_tick << ", \"total_samples\": " << s.total_samples
          << ", \"samples\": [";
      for (std::size_t j = 0; j < s.samples.size(); ++j) {
        out << (j ? "," : "") << format_double(s.samples[j]);
      }
      out << "]}";
    }
    out << (series_.empty() ? "]" : "\n  ]") << '}';
  }
  if (have_capacity_) {
    const CapacitySnapshot& c = capacity_;
    const auto samples = [&out](const std::vector<double>& v) {
      out << '[';
      for (std::size_t i = 0; i < v.size(); ++i) out << (i ? "," : "") << format_double(v[i]);
      out << ']';
    };
    out << ",\n  \"capacity\": {\"period_s\": " << format_double(c.period_s)
        << ", \"binding\": ";
    json_escape(out, c.binding);
    out << ", \"binding_stage\": ";
    json_escape(out, c.binding_stage);
    out << ", \"sustainable_rps\": " << format_double(c.sustainable_rps)
        << ",\n    \"resources\": [";
    for (std::size_t i = 0; i < c.resources.size(); ++i) {
      const auto& r = c.resources[i];
      out << (i ? ",\n      " : "\n      ") << "{\"device\": ";
      json_escape(out, r.device);
      out << ", \"engine\": ";
      json_escape(out, r.engine);
      out << ", \"capacity\": " << format_double(r.capacity) << ", \"busy_frac\": ";
      samples(r.busy_frac);
      out << ", \"queue_mean\": ";
      samples(r.queue_mean);
      out << '}';
    }
    out << (c.resources.empty() ? "]" : "\n    ]") << ",\n    \"segments\": [";
    for (std::size_t i = 0; i < c.segments.size(); ++i) {
      const auto& s = c.segments[i];
      out << (i ? ", " : "") << "{\"begin\": " << s.begin << ", \"end\": " << s.end
          << ", \"resource\": ";
      json_escape(out, s.resource);
      out << '}';
    }
    out << "],\n    \"little_l\": ";
    samples(c.little_l);
    out << ", \"little_lambda_w\": ";
    samples(c.little_lambda_w);
    out << ", \"violation_intervals\": [";
    for (std::size_t i = 0; i < c.violation_intervals.size(); ++i) {
      out << (i ? "," : "") << c.violation_intervals[i];
    }
    out << "]}";
  }
  out << "\n}\n";
}

void TelemetryExport::write_csv(std::ostream& out) const {
  out << "record,name,labels,x,value\n";
  for (const auto& ins : instruments_) {
    if (ins.wall_clock) continue;
    const std::string name = csv_field(ins.name);
    const std::string labels = csv_field(flat_labels(ins.labels));
    if (ins.type == InstrumentType::kHistogram) {
      out << "histogram," << name << ',' << labels << ",count," << ins.count << '\n';
      out << "histogram," << name << ',' << labels << ",sum," << format_double(ins.sum)
          << '\n';
      std::uint64_t cum = 0;
      for (const auto& b : ins.buckets) {
        cum += b.count;
        out << "bucket," << name << ',' << labels << ',' << format_double(b.upper) << ','
            << cum << '\n';
      }
    } else {
      out << instrument_type_name(ins.type) << ',' << name << ',' << labels << ",,"
          << format_double(ins.value) << '\n';
    }
  }
  for (const auto& s : series_) {
    const std::string name = csv_field(s.name);
    const std::string labels = csv_field(flat_labels(s.labels));
    for (std::size_t j = 0; j < s.samples.size(); ++j) {
      const double t =
          series_start_s_ + static_cast<double>(s.start_tick + j) * series_period_s_;
      out << "sample," << name << ',' << labels << ',' << format_double(t) << ','
          << format_double(s.samples[j]) << '\n';
    }
  }
}

void TelemetryExport::write_prometheus(std::ostream& out) const {
  std::string last_typed;  // emit one TYPE line per metric family
  for (const auto& ins : instruments_) {
    const std::string name = prom_name(ins.name);
    if (name != last_typed) {
      out << "# TYPE " << name << ' ' << instrument_type_name(ins.type) << '\n';
      last_typed = name;
    }
    if (ins.type == InstrumentType::kHistogram) {
      std::uint64_t cum = 0;
      for (const auto& b : ins.buckets) {
        cum += b.count;
        out << name << "_bucket";
        prom_label_block(out, ins.labels, "le", format_double(b.upper));
        out << ' ' << cum << '\n';
      }
      out << name << "_bucket";
      prom_label_block(out, ins.labels, "le", "+Inf");
      out << ' ' << ins.count << '\n';
      out << name << "_sum";
      prom_label_block(out, ins.labels);
      out << ' ' << format_double(ins.sum) << '\n';
      out << name << "_count";
      prom_label_block(out, ins.labels);
      out << ' ' << ins.count << '\n';
    } else {
      out << name;
      prom_label_block(out, ins.labels);
      out << ' ' << format_double(ins.value) << '\n';
    }
  }
}

}  // namespace serve::metrics
