// Per-stage latency breakdown aggregation.
//
// Every request carries a set of stage durations (queue, preprocess,
// transfer, inference, broker, ...). A Breakdown aggregates those across
// requests and reports absolute means and relative shares — the quantity the
// paper plots in Figs. 4, 6, and 11.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "metrics/stat_accumulator.h"

namespace serve::metrics {

/// Lifecycle stages of a serving request. Kept as a fixed enum so breakdowns
/// are POD-cheap; not every pipeline populates every stage.
enum class Stage : std::uint8_t {
  kIngest = 0,      ///< request deserialization / HTTP handling on host CPU
  kQueue,           ///< waiting in scheduler / dynamic-batcher queues
  kPreprocess,      ///< JPEG decode + resize + normalize
  kTransfer,        ///< PCIe host<->device movement
  kInference,       ///< DNN execution on the accelerator
  kBroker,          ///< message-broker publish + consume (multi-DNN pipelines)
  kPostprocess,     ///< response assembly / serialization
  kCount
};

inline constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

[[nodiscard]] constexpr std::string_view stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::kIngest: return "ingest";
    case Stage::kQueue: return "queue";
    case Stage::kPreprocess: return "preprocess";
    case Stage::kTransfer: return "transfer";
    case Stage::kInference: return "inference";
    case Stage::kBroker: return "broker";
    case Stage::kPostprocess: return "postprocess";
    case Stage::kCount: break;
  }
  return "?";
}

/// Per-request stage durations in seconds. Value type, trivially copyable.
struct StageTimes {
  std::array<double, kStageCount> seconds{};

  double& operator[](Stage s) noexcept { return seconds[static_cast<std::size_t>(s)]; }
  double operator[](Stage s) const noexcept { return seconds[static_cast<std::size_t>(s)]; }

  [[nodiscard]] double total() const noexcept {
    double t = 0.0;
    for (double v : seconds) t += v;
    return t;
  }
};

/// Aggregates StageTimes across many requests.
class Breakdown {
 public:
  void add(const StageTimes& t) noexcept {
    for (std::size_t i = 0; i < kStageCount; ++i) per_stage_[i].add(t.seconds[i]);
    total_.add(t.total());
  }

  void merge(const Breakdown& other) noexcept {
    for (std::size_t i = 0; i < kStageCount; ++i) per_stage_[i].merge(other.per_stage_[i]);
    total_.merge(other.total_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return total_.count(); }
  [[nodiscard]] double mean_total() const noexcept { return total_.mean(); }
  [[nodiscard]] double mean(Stage s) const noexcept {
    return per_stage_[static_cast<std::size_t>(s)].mean();
  }

  /// Fraction of mean end-to-end time spent in stage `s` (0 if no samples).
  [[nodiscard]] double share(Stage s) const noexcept {
    const double t = mean_total();
    return t > 0.0 ? mean(s) / t : 0.0;
  }

  [[nodiscard]] const StatAccumulator& stage_stats(Stage s) const noexcept {
    return per_stage_[static_cast<std::size_t>(s)];
  }

  void reset() noexcept {
    for (auto& a : per_stage_) a.reset();
    total_.reset();
  }

 private:
  std::array<StatAccumulator, kStageCount> per_stage_{};
  StatAccumulator total_{};
};

}  // namespace serve::metrics
