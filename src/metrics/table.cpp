#include "metrics/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace serve::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

Table& Table::add_row(std::vector<Cell> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
  return *this;
}

std::string Table::format(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  std::ostringstream os;
  if (const auto* d = std::get_if<double>(&c)) {
    os << std::fixed << std::setprecision(precision_) << *d;
  } else {
    os << std::get<std::int64_t>(c);
  }
  return os.str();
}

std::string Table::cell_text(std::size_t row, std::size_t col) const {
  return format(rows_.at(row).at(col));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> text;
  text.reserve(rows_.size());
  for (const auto& row : rows_) {
    auto& t = text.emplace_back();
    t.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      t.push_back(format(row[c]));
      widths[c] = std::max(widths[c], t.back().size());
    }
  }
  auto line = [&] {
    for (auto w : widths) os << '+' << std::string(w + 2, '-');
    os << "+\n";
  };
  line();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << headers_[c] << " |";
  }
  os << '\n';
  line();
  for (const auto& t : text) {
    os << '|';
    for (std::size_t c = 0; c < t.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << t[c] << " |";
    }
    os << '\n';
  }
  line();
}

void Table::print_markdown(std::ostream& os) const {
  os << '|';
  for (const auto& h : headers_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (const auto& cell : row) os << ' ' << format(cell) << " |";
    os << '\n';
  }
}

void Table::print_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << escape(headers_[c]) << (c + 1 < headers_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << escape(format(row[c])) << (c + 1 < row.size() ? "," : "\n");
    }
  }
}

}  // namespace serve::metrics
