// Log-bucketed histogram for latency-style distributions.
//
// Buckets grow geometrically between a configurable [min, max] range so that
// relative error is bounded (default ~2%) across six orders of magnitude —
// the same idea as HdrHistogram, sized for serving latencies (1 us .. 1000 s).
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/stat_accumulator.h"

namespace serve::metrics {

/// Fixed-layout geometric histogram with percentile queries.
///
/// Values below `min_value` land in the first bucket, values above
/// `max_value` in the last; exact counts/mean are tracked separately by an
/// embedded StatAccumulator so summary stats have no bucketing error.
class Histogram {
 public:
  struct Options {
    double min_value = 1e-6;        ///< lower edge of first regular bucket
    double max_value = 1e3;         ///< upper edge of last regular bucket
    double growth = 1.04;           ///< geometric bucket growth factor
    bool track_exemplars = false;   ///< retain the last (trace_id, value) per bucket
  };

  Histogram() : Histogram(Options{}) {}
  explicit Histogram(const Options& opts);

  void add(double value) noexcept;

  /// Records `value` and — when `track_exemplars` is set and trace_id is
  /// nonzero — retains (trace_id, value) as the bucket's exemplar,
  /// overwriting any previous one. Last-write-wins keeps the exemplar the
  /// most recent causal witness for that latency band; exporters use it to
  /// link SLO tail buckets to a concrete trace.
  void add(double value, std::uint64_t trace_id) noexcept;

  void merge(const Histogram& other);

  /// Returns the value at quantile q in [0, 1] (e.g. 0.99 for p99).
  /// Linear interpolation within the containing bucket.
  ///
  /// Contract on an empty histogram (`count() == 0`): every quantile —
  /// including p999() — returns exactly 0.0. Callers that must distinguish
  /// "no samples" from "all samples were 0" check `count()`; this is a
  /// deliberate, tested contract, not incidental fallthrough.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] double p999() const noexcept { return quantile(0.999); }

  /// One occupied bucket with its exact layout edges. The underflow bucket
  /// reports lower == 0; the overflow bucket's upper is the observed max (or
  /// one more geometric step when that is larger — edges stay strictly
  /// ascending), so exporters can emit cumulative (`le`) form without
  /// re-deriving layout.
  struct Bucket {
    double lower = 0.0;
    double upper = 0.0;
    std::uint64_t count = 0;
    // Exemplar: last (trace_id, value) observed in this bucket when
    // `track_exemplars` is enabled. trace_id == 0 means "none retained".
    std::uint64_t exemplar_trace_id = 0;
    double exemplar_value = 0.0;
  };

  /// Occupied buckets in ascending value order (empty buckets elided).
  [[nodiscard]] std::vector<Bucket> nonzero_buckets() const;

  /// Samples with value <= `value`, interpolating linearly within the
  /// straddling bucket (the same convention tools/report uses for SLO
  /// attainment). Allocation-free — the alert engine calls this every
  /// recorder tick.
  [[nodiscard]] double count_at_or_below(double value) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return stats_.count(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double sum() const noexcept { return stats_.sum(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }
  [[nodiscard]] const StatAccumulator& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }

  void reset() noexcept;

 private:
  [[nodiscard]] std::size_t bucket_index(double value) const noexcept;
  [[nodiscard]] double bucket_lower(std::size_t i) const noexcept;
  [[nodiscard]] double bucket_upper(std::size_t i) const noexcept;

  struct Exemplar {
    std::uint64_t trace_id = 0;
    double value = 0.0;
  };

  Options opts_;
  double log_growth_inv_ = 0.0;  ///< 1 / ln(growth), cached
  std::vector<std::uint64_t> counts_;
  std::vector<Exemplar> exemplars_;  ///< bucket-aligned; empty unless tracking
  StatAccumulator stats_;
};

}  // namespace serve::metrics
