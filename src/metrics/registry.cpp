#include "metrics/registry.h"

#include <algorithm>
#include <stdexcept>

namespace serve::metrics {

namespace {

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 1; i < labels.size(); ++i) {
    if (labels[i].first == labels[i - 1].first) {
      throw std::invalid_argument("Registry: duplicate label key '" + labels[i].first + "'");
    }
  }
  return labels;
}

bool same_key_set(const Labels& a, const Labels& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first) return false;
  }
  return true;
}

}  // namespace

Registry::Instrument& Registry::intern(std::string name, Labels labels, InstrumentType type,
                                       bool wall_clock) {
  labels = canonical(std::move(labels));
  std::lock_guard lock{mu_};
  for (auto& ins : instruments_) {
    if (ins->name != name) continue;
    // A name is bound to one type and one label key-set forever.
    if (ins->type != type) {
      throw std::invalid_argument("Registry: '" + name + "' already registered as " +
                                  std::string(instrument_type_name(ins->type)) +
                                  ", re-registered as " +
                                  std::string(instrument_type_name(type)));
    }
    if (!same_key_set(ins->labels, labels)) {
      throw std::invalid_argument("Registry: '" + name +
                                  "' re-registered with a different label key set");
    }
    if (ins->labels == labels) return *ins;
  }
  auto ins = std::make_unique<Instrument>();
  ins->name = std::move(name);
  ins->labels = std::move(labels);
  ins->type = type;
  ins->wall_clock = wall_clock;
  if (type == InstrumentType::kHistogram) ins->hist = std::make_unique<Histogram>();
  instruments_.push_back(std::move(ins));
  return *instruments_.back();
}

Counter Registry::counter(std::string name, Labels labels) {
  return Counter{&intern(std::move(name), std::move(labels), InstrumentType::kCounter, false).cell};
}

Counter Registry::wall_clock_counter(std::string name, Labels labels) {
  return Counter{&intern(std::move(name), std::move(labels), InstrumentType::kCounter, true).cell};
}

Gauge Registry::gauge(std::string name, Labels labels) {
  return Gauge{&intern(std::move(name), std::move(labels), InstrumentType::kGauge, false).cell};
}

void Registry::counter_fn(std::string name, Labels labels, std::function<double()> fn) {
  intern(std::move(name), std::move(labels), InstrumentType::kCounter, false).callback =
      std::move(fn);
}

void Registry::gauge_fn(std::string name, Labels labels, std::function<double()> fn) {
  intern(std::move(name), std::move(labels), InstrumentType::kGauge, false).callback =
      std::move(fn);
}

HistogramHandle Registry::histogram(std::string name, Labels labels,
                                    const Histogram::Options& opts) {
  auto& ins = intern(std::move(name), std::move(labels), InstrumentType::kHistogram, false);
  // First registration decides the layout; intern() made a default-layout
  // histogram, replace it while it's still empty.
  if (ins.hist->count() == 0) ins.hist = std::make_unique<Histogram>(opts);
  return HistogramHandle{ins.hist.get()};
}

Registry::InstrumentSnapshot Registry::snapshot_one(const Instrument& ins) const {
  InstrumentSnapshot s;
  s.name = ins.name;
  s.labels = ins.labels;
  s.type = ins.type;
  s.wall_clock = ins.wall_clock;
  s.value = ins.value();
  if (ins.type == InstrumentType::kHistogram) {
    const Histogram& h = *ins.hist;
    s.count = h.count();
    s.sum = h.sum();
    s.min = h.min();
    s.max = h.max();
    for (const auto& b : h.nonzero_buckets()) {
      s.buckets.push_back({b.lower, b.upper, b.count, b.exemplar_trace_id, b.exemplar_value});
    }
  }
  return s;
}

std::vector<Registry::InstrumentSnapshot> Registry::snapshot() const {
  std::lock_guard lock{mu_};
  std::vector<InstrumentSnapshot> out;
  out.reserve(instruments_.size());
  for (const auto& ins : instruments_) out.push_back(snapshot_one(*ins));
  return out;
}

void Registry::freeze_callbacks() {
  std::lock_guard lock{mu_};
  for (auto& ins : instruments_) {
    if (!ins->callback) continue;
    ins->cell.store(ins->callback(), std::memory_order_relaxed);
    ins->callback = nullptr;
  }
}

std::size_t Registry::size() const {
  std::lock_guard lock{mu_};
  return instruments_.size();
}

std::size_t Registry::instrument_count() const { return size(); }

Registry::InstrumentInfo Registry::info(std::size_t i) const {
  std::lock_guard lock{mu_};
  const auto& ins = *instruments_.at(i);
  return {ins.name, ins.labels, ins.type, ins.wall_clock};
}

double Registry::current_value(std::size_t i) const {
  std::lock_guard lock{mu_};
  return instruments_.at(i)->value();
}

void Registry::sample_values(std::vector<double>& out) const {
  std::lock_guard lock{mu_};
  out.resize(instruments_.size());
  for (std::size_t i = 0; i < instruments_.size(); ++i) out[i] = instruments_[i]->value();
}

Registry::InstrumentSnapshot Registry::snapshot_at(std::size_t i) const {
  std::lock_guard lock{mu_};
  return snapshot_one(*instruments_.at(i));
}

std::pair<std::uint64_t, double> Registry::histogram_count_below(std::size_t i,
                                                                 double threshold) const {
  std::lock_guard lock{mu_};
  const auto& ins = *instruments_.at(i);
  if (ins.type != InstrumentType::kHistogram) return {0, 0.0};
  return {ins.hist->count(), ins.hist->count_at_or_below(threshold)};
}

std::optional<Registry::InstrumentSnapshot> Registry::find(const std::string& name,
                                                           const Labels& labels) const {
  const Labels canon = canonical(labels);
  std::lock_guard lock{mu_};
  for (const auto& ins : instruments_) {
    if (ins->name == name && ins->labels == canon) return snapshot_one(*ins);
  }
  return std::nullopt;
}

}  // namespace serve::metrics
