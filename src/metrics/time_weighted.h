// Time-weighted integrator for gauge-like quantities.
//
// Point-sampling a bursty gauge on the flight-recorder cadence aliases: a
// queue that oscillates 0 -> 8 -> 0 between ticks can sample as permanently
// empty (or permanently full) depending on phase. The fix is to integrate the
// value over virtual time at every *change* and export the integral as a
// monotone counter; differencing two recorder ticks then yields the exact
// interval time-average, independent of sampling phase.
//
// sim::Resource carries its own integrals (busy_seconds_total /
// queue_seconds_total); this helper provides the same accumulation for
// quantities that are not resources — requests in flight, batcher queue
// depth, fleet-node outstanding dispatches.
//
// Usage: call set(now, v) (or add(now, delta)) at every change;
// integral_seconds(now) integrates up to `now` and returns value-seconds.
// Sim-thread only, like the components it instruments.
#pragma once

#include "sim/time.h"

namespace serve::metrics {

class TimeIntegrator {
 public:
  TimeIntegrator() = default;
  explicit TimeIntegrator(sim::Time start) : last_change_(start) {}

  void set(sim::Time now, double value) noexcept {
    advance(now);
    value_ = value;
  }

  void add(sim::Time now, double delta) noexcept {
    advance(now);
    value_ += delta;
  }

  [[nodiscard]] double value() const noexcept { return value_; }

  /// Integral of the tracked value over virtual time, in value-seconds.
  /// Monotone for non-negative values; safe to export as a counter.
  [[nodiscard]] double integral_seconds(sim::Time now) noexcept {
    advance(now);
    return integral_ns_ * 1e-9;
  }

 private:
  void advance(sim::Time now) noexcept {
    if (now > last_change_) {
      integral_ns_ += value_ * static_cast<double>(now - last_change_);
      last_change_ = now;
    }
  }

  double value_ = 0.0;
  double integral_ns_ = 0.0;
  sim::Time last_change_ = 0;
};

}  // namespace serve::metrics
