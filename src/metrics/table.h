// Result-table formatting for bench binaries.
//
// Every figure-reproduction bench prints a table of measured values next to
// the paper's reported numbers. Table renders aligned console output,
// CSV, and GitHub markdown from the same data.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace serve::metrics {

/// A cell is either text or a number (formatted with per-column precision).
using Cell = std::variant<std::string, double, std::int64_t>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Number of fraction digits used when formatting double cells (default 2).
  void set_precision(int digits) noexcept { precision_ = digits; }

  Table& add_row(std::vector<Cell> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept { return headers_; }

  /// Raw (unformatted) cells of one row — exporters keep numbers as numbers
  /// instead of round-tripping through the console formatting.
  [[nodiscard]] const std::vector<Cell>& row(std::size_t i) const noexcept { return rows_[i]; }

  /// Returns the formatted string for cell (row, col).
  [[nodiscard]] std::string cell_text(std::size_t row, std::size_t col) const;

  void print(std::ostream& os) const;          ///< aligned console table
  void print_markdown(std::ostream& os) const; ///< GitHub-flavoured markdown
  void print_csv(std::ostream& os) const;

 private:
  [[nodiscard]] std::string format(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 2;
};

}  // namespace serve::metrics
