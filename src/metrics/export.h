// Exporters for the telemetry layer: one deterministic writer shared by the
// bench harnesses and the flight recorder.
//
// Three formats from one in-memory document:
//
//   - JSON ("servescope-telemetry-v1"): a superset of the google-benchmark
//     schema `tools/bench_check` consumes — a top-level "benchmarks" array
//     whose entries carry "name"/"real_time"/"time_unit" (bench_check
//     ignores every other field), plus "checks", "instruments" (with
//     cumulative `le` histogram buckets) and "series" sections;
//   - CSV: long-form rows `record,name,labels,x,value` — `sample` rows carry
//     the virtual timestamp in `x`, `bucket` rows the upper edge (`le`),
//     scalar instrument rows their kind with `x` empty;
//   - Prometheus text exposition: counters/gauges plus full `le`-form
//     histograms with `_sum`/`_count`.
//
// Determinism: doubles are printed with std::to_chars shortest round-trip
// form, content order follows registration order, and wall-clock-derived
// instruments (telemetry self-overhead) are excluded from JSON/CSV so a
// seeded run exports bit-identical bytes. Prometheus output includes the
// wall-clock instruments — it is a scrape of *this* process, not a
// reproducibility artifact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "metrics/flight_recorder.h"
#include "metrics/registry.h"
#include "metrics/table.h"

namespace serve::metrics {

/// Shortest round-trip decimal form of `v` (std::to_chars): "0.1" not
/// "0.100000", bit-exact across runs and platforms with the same libc++.
[[nodiscard]] std::string format_double(double v);

/// One google-benchmark-style result row.
struct BenchmarkRow {
  std::string name;
  double real_time = 0.0;
  std::string time_unit = "ms";
  /// Extra numeric fields appended to the JSON entry (bench_check ignores
  /// them; tools/report and humans read them).
  std::vector<std::pair<std::string, double>> extras;
};

/// One shape-check verdict (claims a figure reproduces the paper's shape).
struct CheckRow {
  std::string claim;
  bool pass = false;
  std::string detail;
};

/// Capacity-plane payload for the JSON "capacity" section (produced by
/// obs::CapacityPlane::snapshot()): per-resource interval timelines, binding
/// segments, the Little's-law audit series, and the headroom estimate. All
/// values derive from monotone counters differenced at recorder ticks, so
/// same-seed runs export byte-identical sections.
struct CapacitySnapshot {
  double period_s = 0.0;  ///< recorder tick period (interval length)
  struct Resource {
    std::string device;
    std::string engine;
    double capacity = 1.0;
    std::vector<double> busy_frac;   ///< per interval, in [0, 1]
    std::vector<double> queue_mean;  ///< per interval time-average depth
  };
  std::vector<Resource> resources;
  struct Segment {
    std::uint64_t begin = 0;    ///< first interval (inclusive)
    std::uint64_t end = 0;      ///< last interval (exclusive)
    std::string resource;       ///< "device.engine", or "idle"
  };
  std::vector<Segment> segments;
  std::vector<double> little_l;         ///< Δ occupancy-integral / dt
  std::vector<double> little_lambda_w;  ///< Δ latency-sum / dt
  std::vector<std::uint64_t> violation_intervals;
  double sustainable_rps = 0.0;  ///< headroom knee estimate (0 = unknown)
  std::string binding;           ///< dominant binding resource, "idle" if none
  std::string binding_stage;     ///< stage-taxonomy verdict for `binding`
};

class TelemetryExport {
 public:
  /// Free-form string context ("figure" -> "fig05", "preproc" -> "gpu"...).
  void set_context(std::string key, std::string value);

  void add_benchmark(BenchmarkRow row) { benchmarks_.push_back(std::move(row)); }
  void add_check(CheckRow row) { checks_.push_back(std::move(row)); }

  /// Records a result table (headers + typed cells) in the JSON "tables"
  /// section; tables do not appear in the CSV or Prometheus outputs.
  void add_table(std::string name, const Table& table);

  /// Captures the registry's current instrument values.
  void capture_instruments(const Registry& registry) { instruments_ = registry.snapshot(); }

  /// Captures the recorder's ring-buffered series (and its cadence).
  void capture_series(const FlightRecorder& recorder);

  /// Attaches a capacity-plane snapshot; emitted as the JSON "capacity"
  /// section (bench_check ignores it, tools/capacity and tools/report read it).
  void set_capacity(CapacitySnapshot snapshot) {
    capacity_ = std::move(snapshot);
    have_capacity_ = true;
  }

  [[nodiscard]] std::size_t failed_checks() const noexcept;
  [[nodiscard]] const std::vector<BenchmarkRow>& benchmarks() const noexcept {
    return benchmarks_;
  }
  [[nodiscard]] const std::vector<CheckRow>& checks() const noexcept { return checks_; }

  void write_json(std::ostream& out) const;
  void write_csv(std::ostream& out) const;
  void write_prometheus(std::ostream& out) const;

 private:
  struct TableCopy {
    std::string name;
    std::vector<std::string> headers;
    std::vector<std::vector<Cell>> rows;
  };

  std::vector<std::pair<std::string, std::string>> context_;
  std::vector<BenchmarkRow> benchmarks_;
  std::vector<CheckRow> checks_;
  std::vector<TableCopy> tables_;
  std::vector<Registry::InstrumentSnapshot> instruments_;
  std::vector<FlightRecorder::Series> series_;
  double series_period_s_ = 0.0;
  double series_start_s_ = 0.0;
  bool have_series_ = false;
  CapacitySnapshot capacity_;
  bool have_capacity_ = false;
};

}  // namespace serve::metrics
