#include "obs/alert_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "metrics/export.h"

namespace serve::obs {

namespace {

std::string flat_labels(const metrics::Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace

AlertEngine::AlertEngine(metrics::Registry& registry) : registry_(registry) {
  active_gauge_ = registry_.gauge("obs_alerts_active");
  self_time_ = registry_.wall_clock_counter("obs_alert_engine_self_seconds_total");
}

void AlertEngine::add_threshold(ThresholdRule rule) {
  const bool has_above = std::isfinite(rule.fire_above);
  const bool has_below = std::isfinite(rule.fire_below);
  if (has_above == has_below) {
    throw std::invalid_argument("ThresholdRule '" + rule.name +
                                "': set exactly one of fire_above / fire_below");
  }
  ThresholdState st;
  st.fired = registry_.counter("obs_alerts_fired_total", {{"alert", rule.name}});
  st.resolved = registry_.counter("obs_alerts_resolved_total", {{"alert", rule.name}});
  st.rule = std::move(rule);
  thresholds_.push_back(std::move(st));
}

void AlertEngine::add_burn_rate(BurnRateRule rule) {
  if (!(rule.target > 0.0) || !(rule.target < 1.0)) {
    throw std::invalid_argument("BurnRateRule '" + rule.name + "': target must be in (0, 1)");
  }
  if (rule.short_window_ticks <= 0 || rule.long_window_ticks < rule.short_window_ticks) {
    throw std::invalid_argument("BurnRateRule '" + rule.name +
                                "': require 0 < short_window_ticks <= long_window_ticks");
  }
  BurnState st;
  st.fired = registry_.counter("obs_alerts_fired_total", {{"alert", rule.name}});
  st.resolved = registry_.counter("obs_alerts_resolved_total", {{"alert", rule.name}});
  st.rule = std::move(rule);
  burns_.push_back(std::move(st));
}

void AlertEngine::add_stall(StallRule rule) {
  StallState st;
  st.fired = registry_.counter("obs_alerts_fired_total", {{"alert", rule.name}});
  st.resolved = registry_.counter("obs_alerts_resolved_total", {{"alert", rule.name}});
  st.rule = std::move(rule);
  stalls_.push_back(std::move(st));
}

void AlertEngine::add_littles_law(LittleLawRule rule) {
  if (!(rule.tolerance > 0.0)) {
    throw std::invalid_argument("LittleLawRule '" + rule.name + "': tolerance must be > 0");
  }
  LittleState st;
  st.fired = registry_.counter("obs_alerts_fired_total", {{"alert", rule.name}});
  st.resolved = registry_.counter("obs_alerts_resolved_total", {{"alert", rule.name}});
  st.deviation_ticks =
      registry_.counter("obs_little_law_deviation_ticks_total", {{"alert", rule.name}});
  st.rule = std::move(rule);
  littles_.push_back(std::move(st));
}

void AlertEngine::attach(metrics::FlightRecorder& recorder) {
  recorder.add_tick_listener(
      [this](sim::Time now, std::uint64_t tick) { evaluate(now, tick); });
}

void AlertEngine::set_triggered_sampler(trace::TraceSampler* sampler, int hold_ticks) {
  sampler_ = sampler;
  capture_hold_ticks_ = hold_ticks < 0 ? 0 : hold_ticks;
}

void AlertEngine::release_triggered_sampler() noexcept {
  if (sampler_ != nullptr && capture_on_) sampler_->set_forced(false);
  sampler_ = nullptr;
  capture_on_ = false;
}

bool AlertEngine::matches(const metrics::Labels& labels, const metrics::Labels& filter) const {
  for (const auto& want : filter) {
    bool found = false;
    for (const auto& have : labels) {
      if (have == want) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

void AlertEngine::scan_new_instruments(ThresholdState& st, std::size_t n) {
  for (std::size_t i = st.scanned_until; i < n; ++i) {
    const auto info = registry_.info(i);
    if (info.wall_clock || info.name != st.rule.instrument) continue;
    if (!matches(info.labels, st.rule.label_filter)) continue;
    st.matched.push_back(i);
    st.per_state.emplace_back();
    st.prev_value.push_back(0.0);
    st.have_prev.push_back(false);
  }
  st.scanned_until = n;
}

void AlertEngine::scan_new_instruments(BurnState& st, std::size_t n) {
  for (std::size_t i = st.scanned_until; i < n; ++i) {
    const auto info = registry_.info(i);
    if (info.wall_clock || info.type != metrics::InstrumentType::kHistogram) continue;
    if (info.name != st.rule.histogram) continue;
    if (!matches(info.labels, st.rule.label_filter)) continue;
    st.matched.push_back(i);
  }
  st.scanned_until = n;
}

int AlertEngine::step_state(AlertState& state, bool breach, bool clear_ok, int for_ticks,
                            int clear_for_ticks) {
  if (!state.firing) {
    if (breach) {
      if (++state.breach_ticks >= for_ticks) {
        state.firing = true;
        state.breach_ticks = 0;
        state.clear_ticks = 0;
        return +1;
      }
    } else {
      state.breach_ticks = 0;
    }
  } else {
    if (clear_ok) {
      if (++state.clear_ticks >= clear_for_ticks) {
        state.firing = false;
        state.breach_ticks = 0;
        state.clear_ticks = 0;
        return -1;
      }
    } else {
      state.clear_ticks = 0;
    }
  }
  return 0;
}

std::string AlertEngine::instance_name(const ThresholdRule& rule, std::size_t reg_index) const {
  const auto info = registry_.info(reg_index);
  const std::string flat = flat_labels(info.labels);
  if (flat.empty()) return rule.name;
  return rule.name + '{' + flat + '}';
}

std::string AlertEngine::top_contributors(const std::vector<std::size_t>& matched,
                                          std::size_t limit) const {
  std::vector<std::pair<double, std::size_t>> ranked;
  ranked.reserve(matched.size());
  for (const std::size_t i : matched) ranked.emplace_back(registry_.current_value(i), i);
  // Descending by value; registry index breaks ties so the order (and the
  // log bytes) stay deterministic.
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (ranked.size() > limit) ranked.resize(limit);
  std::string out = "top:";
  for (const auto& [v, i] : ranked) {
    const auto info = registry_.info(i);
    out += ' ';
    out += info.name;
    const std::string flat = flat_labels(info.labels);
    if (!flat.empty()) {
      out += '{';
      out += flat;
      out += '}';
    }
    out += '=';
    out += metrics::format_double(v);
  }
  return out;
}

void AlertEngine::transition(sim::Time now, const std::string& alert, bool firing, double value,
                             double threshold, std::string detail, metrics::Counter& fired,
                             metrics::Counter& resolved) {
  AlertEvent ev;
  ev.t = now;
  ev.alert = alert;
  ev.firing = firing;
  ev.value = value;
  ev.threshold = threshold;
  ev.detail = std::move(detail);
  if (firing) {
    ++active_;
    ++fired_total_;
    fired.inc();
  } else {
    if (active_ > 0) --active_;
    resolved.inc();
  }
  if (trace_ != nullptr) {
    trace_->instant("alerts", alert + (firing ? " firing" : " resolved"), now,
                    {{"value", metrics::format_double(value)},
                     {"threshold", metrics::format_double(threshold)},
                     {"detail", ev.detail}});
  }
  events_.push_back(std::move(ev));
}

void AlertEngine::evaluate_threshold(ThresholdState& st, sim::Time now, double dt_s,
                                     std::size_t n) {
  scan_new_instruments(st, n);
  const ThresholdRule& r = st.rule;
  const bool above = std::isfinite(r.fire_above);
  const double fire_level = above ? r.fire_above : r.fire_below;
  const double clear_level = above ? (std::isnan(r.clear_below) ? r.fire_above : r.clear_below)
                                   : (std::isnan(r.clear_above) ? r.fire_below : r.clear_above);

  // Per-instrument signal (value or rate); rate needs a previous sample.
  // Computed inline per index — this runs every recorder tick, so no
  // per-tick scratch allocations.
  const auto signal_at = [&](std::size_t k) -> std::pair<double, bool> {
    const double v = registry_.current_value(st.matched[k]);
    if (r.signal == ThresholdRule::Signal::kValue) return {v, true};
    std::pair<double, bool> out{0.0, false};
    if (st.have_prev[k] && dt_s > 0.0) out = {(v - st.prev_value[k]) / dt_s, true};
    st.prev_value[k] = v;
    st.have_prev[k] = true;
    return out;
  };

  const auto judge = [&](double v, bool valid) -> std::pair<bool, bool> {
    if (!valid) return {false, true};  // no signal: no breach, clears freely
    const bool breach = above ? v > fire_level : v < fire_level;
    const bool clear_ok = above ? v <= clear_level : v >= clear_level;
    return {breach, clear_ok};
  };

  if (r.agg == ThresholdRule::Agg::kPerInstrument) {
    for (std::size_t k = 0; k < st.matched.size(); ++k) {
      const auto [v, valid] = signal_at(k);
      const auto [breach, clear_ok] = judge(v, valid);
      const int step = step_state(st.per_state[k], breach, clear_ok, r.for_ticks,
                                  r.clear_for_ticks);
      if (step != 0) {
        transition(now, instance_name(r, st.matched[k]), step > 0, v, fire_level,
                   top_contributors({st.matched[k]}, 1), st.fired, st.resolved);
      }
    }
    return;
  }

  double agg = r.agg == ThresholdRule::Agg::kMax ? -std::numeric_limits<double>::infinity() : 0.0;
  bool any = false;
  for (std::size_t k = 0; k < st.matched.size(); ++k) {
    const auto [v, valid] = signal_at(k);
    if (!valid) continue;
    any = true;
    if (r.agg == ThresholdRule::Agg::kMax) {
      agg = std::max(agg, v);
    } else {
      agg += v;
    }
  }
  if (!any) agg = 0.0;
  const auto [breach, clear_ok] = judge(agg, any);
  const int step = step_state(st.agg_state, breach, clear_ok, r.for_ticks, r.clear_for_ticks);
  if (step != 0) {
    transition(now, r.name, step > 0, agg, fire_level, top_contributors(st.matched), st.fired,
               st.resolved);
  }
}

void AlertEngine::evaluate_burn(BurnState& st, sim::Time now, std::size_t n) {
  scan_new_instruments(st, n);
  const BurnRateRule& r = st.rule;

  // Cumulative (count, over-SLO count) across the matched histograms at this
  // tick; windows difference these cumulative samples, so a flight-recorder
  // ring wrap cannot perturb them — the engine owns its trailing window.
  BurnWindowSample cur;
  for (const std::size_t i : st.matched) {
    const auto [count, good] = registry_.histogram_count_below(i, r.slo_s);
    cur.count += count;
    cur.bad += static_cast<double>(count) - good;
  }
  st.window.push_back(cur);
  const std::size_t keep = static_cast<std::size_t>(r.long_window_ticks) + 1;
  while (st.window.size() > keep) st.window.pop_front();

  const auto burn_over = [&](int ticks) -> double {
    const std::size_t n = st.window.size();
    if (n < 2) return 0.0;
    const std::size_t back = std::min<std::size_t>(static_cast<std::size_t>(ticks), n - 1);
    const BurnWindowSample& old = st.window[n - 1 - back];
    const double dcount = static_cast<double>(cur.count - old.count);
    if (dcount <= 0.0) return 0.0;
    const double dbad = std::max(0.0, cur.bad - old.bad);
    return (dbad / dcount) / (1.0 - r.target);
  };

  const double burn_short = burn_over(r.short_window_ticks);
  const double burn_long = burn_over(r.long_window_ticks);
  const bool breach = burn_short >= r.burn_threshold && burn_long >= r.burn_threshold;
  const bool clear_ok = burn_short < r.burn_threshold;
  const int step = step_state(st.state, breach, clear_ok, /*for_ticks=*/1, r.clear_for_ticks);
  if (step != 0) {
    std::string detail = "burn_short=" + metrics::format_double(burn_short) +
                         " burn_long=" + metrics::format_double(burn_long) +
                         " slo_s=" + metrics::format_double(r.slo_s) + ' ' +
                         top_contributors(st.matched);
    transition(now, r.name, step > 0, burn_short, r.burn_threshold, std::move(detail), st.fired,
               st.resolved);
  }
}

void AlertEngine::scan_new_instruments(StallState& st, std::size_t n) {
  for (std::size_t i = st.scanned_until; i < n; ++i) {
    if (st.progress_idx != kNoIndex &&
        (st.armed_idx != kNoIndex || st.rule.armed_gauge.empty())) {
      break;  // both resolved; skip the info() walk for late registrations
    }
    const auto info = registry_.info(i);
    if (!info.labels.empty()) continue;  // name-only rules watch unlabeled instruments
    if (st.progress_idx == kNoIndex && info.name == st.rule.progress) st.progress_idx = i;
    if (st.armed_idx == kNoIndex && !st.rule.armed_gauge.empty() &&
        info.name == st.rule.armed_gauge) {
      st.armed_idx = i;
    }
  }
  st.scanned_until = n;
}

void AlertEngine::evaluate_stall(StallState& st, sim::Time now, std::size_t n) {
  scan_new_instruments(st, n);
  const StallRule& r = st.rule;
  if (st.progress_idx == kNoIndex) return;
  const double p = registry_.current_value(st.progress_idx);
  bool armed = true;
  double outstanding = 0.0;
  if (!r.armed_gauge.empty()) {
    outstanding = st.armed_idx != kNoIndex ? registry_.current_value(st.armed_idx) : 0.0;
    armed = outstanding > r.armed_above;
  }
  const bool breach = st.have_prev && armed && p == st.prev_progress;
  st.stalled_ticks = breach ? st.stalled_ticks + 1 : 0;
  st.prev_progress = p;
  st.have_prev = true;
  const int step = step_state(st.state, breach, !breach, r.for_ticks, r.clear_for_ticks);
  if (step != 0) {
    std::string detail = "progress=" + metrics::format_double(p) +
                         " stalled_ticks=" + std::to_string(st.stalled_ticks) +
                         " outstanding=" + metrics::format_double(outstanding);
    transition(now, r.name, step > 0, p, 0.0, std::move(detail), st.fired, st.resolved);
  }
}

void AlertEngine::scan_new_instruments(LittleState& st, std::size_t n) {
  for (std::size_t i = st.scanned_until; i < n; ++i) {
    const auto info = registry_.info(i);
    if (info.wall_clock) continue;
    if (!matches(info.labels, st.rule.label_filter)) continue;
    if (info.name == st.rule.occupancy_integral) st.occ_matched.push_back(i);
    if (info.name == st.rule.latency_sum) st.lat_matched.push_back(i);
  }
  st.scanned_until = n;
}

void AlertEngine::evaluate_little(LittleState& st, sim::Time now, double dt_s, std::size_t n) {
  scan_new_instruments(st, n);
  const LittleLawRule& r = st.rule;
  if (st.occ_matched.empty() || st.lat_matched.empty()) return;
  double occ = 0.0, lat = 0.0;
  for (const std::size_t i : st.occ_matched) occ += registry_.current_value(i);
  for (const std::size_t i : st.lat_matched) lat += registry_.current_value(i);
  if (!st.have_prev || dt_s <= 0.0) {
    st.prev_occ = occ;
    st.prev_lat = lat;
    st.have_prev = true;
    return;
  }
  // L and λW are both time-averages over this tick's interval, derived from
  // monotone counters — immune to sampling phase by construction.
  const double little_l = (occ - st.prev_occ) / dt_s;
  const double lam_w = (lat - st.prev_lat) / dt_s;
  st.prev_occ = occ;
  st.prev_lat = lat;
  const double hi = std::max(little_l, lam_w);
  const bool active = hi >= r.min_occupancy;
  const double dev = active ? std::abs(little_l - lam_w) / std::max(hi, 1e-12) : 0.0;
  const bool breach = active && dev > r.tolerance;
  if (breach) st.deviation_ticks.inc();
  const int step = step_state(st.state, breach, !breach, r.for_ticks, r.clear_for_ticks);
  if (step != 0) {
    std::string detail = "L=" + metrics::format_double(little_l) +
                         " lambda_w=" + metrics::format_double(lam_w) +
                         " deviation=" + metrics::format_double(dev);
    transition(now, r.name, step > 0, dev, r.tolerance, std::move(detail), st.fired,
               st.resolved);
  }
}

void AlertEngine::evaluate(sim::Time now, std::uint64_t tick) {
  const auto t0 = std::chrono::steady_clock::now();
  const double dt_s = have_prev_tick_ ? sim::to_seconds(now - prev_tick_time_) : 0.0;
  const std::size_t n = registry_.instrument_count();  // one lock for all scans

  for (auto& st : thresholds_) evaluate_threshold(st, now, dt_s, n);
  for (auto& st : burns_) evaluate_burn(st, now, n);
  for (auto& st : stalls_) evaluate_stall(st, now, n);
  for (auto& st : littles_) evaluate_little(st, now, dt_s, n);

  active_gauge_.set(static_cast<double>(active_));
  prev_tick_time_ = now;
  have_prev_tick_ = true;

  if (sampler_ != nullptr) {
    if (active_ > 0) {
      last_active_tick_ = tick;
      capture_on_ = true;
    } else if (capture_on_ &&
               tick > last_active_tick_ + static_cast<std::uint64_t>(capture_hold_ticks_)) {
      capture_on_ = false;
    }
    sampler_->set_forced(capture_on_);
    if (capture_on_) ++capture_ticks_;
  }

  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  self_time_.inc(dt.count());
}

bool AlertEngine::ever_fired(const std::string& alert) const {
  for (const auto& ev : events_) {
    if (ev.firing && ev.alert == alert) return true;
  }
  return false;
}

void AlertEngine::write_log(std::ostream& out) const {
  for (const auto& ev : events_) {
    out << "t=" << metrics::format_double(sim::to_seconds(ev.t)) << ' '
        << (ev.firing ? "FIRING" : "RESOLVED") << ' ' << ev.alert
        << " value=" << metrics::format_double(ev.value)
        << " threshold=" << metrics::format_double(ev.threshold);
    if (!ev.detail.empty()) out << ' ' << ev.detail;
    out << '\n';
  }
}

std::string AlertEngine::log_text() const {
  std::ostringstream out;
  write_log(out);
  return out.str();
}

}  // namespace serve::obs
