// Capacity plane: interval-resolved per-resource utilization, Little's-law
// audit, bottleneck attribution, and headroom estimation.
//
// The paper's central result is a *resource-level* time breakdown — small
// models bind on the CPU preprocess path and transfers, large models on the
// GPU engine — but cumulative sim::Resource::utilization() since t = 0 and
// point-sampled occupancy gauges cannot answer "which resource is binding
// *right now*". The CapacityPlane rides the FlightRecorder cadence (like the
// AlertEngine) and at every tick differences the monotone integral counters
//
//   hw_resource_busy_seconds_total{device,engine}   (unit-seconds busy)
//   hw_resource_queue_seconds_total{device,engine}  (waiter-seconds queued)
//
// into exact per-interval busy fractions and time-average queue depths —
// integrated over the interval, never point-sampled, so bursty queues cannot
// alias against the sampling phase. On top of the timelines it derives:
//
//   - a per-tick Little's-law audit (L = Δoccupancy-integral/dt vs
//     λ·W = Δcompletion-charged-latency-sum/dt; equal in steady state,
//     split during backlog transients — fault windows show up here);
//   - a deterministic bottleneck attributor naming the binding resource per
//     interval (argmax busy fraction among critical-path engines, ties
//     broken by registration order; `stage_for_resource` maps each engine
//     onto the request-stage taxonomy so the verdict can be cross-checked
//     against trace::extract_critical_paths blame shares);
//   - a headroom estimator: on each tick where the binding resource is
//     meaningfully loaded, sustainable throughput = λ / u_binding; the
//     deterministic median over valid ticks estimates the saturation knee.
//
// Everything derives from monotone counters read at exact virtual-time
// multiples on the sim thread: two same-seed runs produce byte-identical
// capacity snapshots. Self-cost accrues to a wall-clock counter excluded
// from deterministic exports (obs_capacity_plane_self_seconds_total).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/breakdown.h"
#include "metrics/export.h"
#include "metrics/flight_recorder.h"
#include "metrics/registry.h"
#include "sim/time.h"

namespace serve::obs {

/// One tracked resource's interval timelines (tick-aligned with the
/// recorder; entry k covers (tick k-1, tick k] — the first observed tick
/// establishes baselines and produces no entry).
struct ResourceTimeline {
  std::string device;  ///< "cpu", "gpu0", "host", "broker", ...
  std::string engine;  ///< "preproc_workers", "compute", "pcie", "io", ...
  double capacity = 1.0;
  std::vector<double> busy_frac;   ///< interval busy fraction in [0, 1]
  std::vector<double> queue_mean;  ///< interval time-average waiter count

  [[nodiscard]] std::string label() const { return device + "." + engine; }
};

/// Run of consecutive intervals bound by the same resource.
struct BindingSegment {
  std::size_t begin = 0;  ///< first interval index (inclusive)
  std::size_t end = 0;    ///< last interval index (exclusive)
  /// Index into resources(), or kIdle when no resource cleared the floor.
  std::size_t resource = 0;
};

/// One interval's Little's-law audit sample.
struct LittleSample {
  double l = 0.0;         ///< Δ(in-flight time integral) / dt
  double lambda_w = 0.0;  ///< Δ(completion-charged latency sum) / dt
  double deviation = 0.0; ///< |l - lambda_w| / max(l, lambda_w)
  bool violated = false;  ///< deviation > tolerance at meaningful occupancy
};

/// Request stage a hardware engine contributes to on the critical path
/// (kIngest when unknown — host cores serve the web stack).
[[nodiscard]] metrics::Stage stage_for_resource(std::string_view device,
                                                std::string_view engine) noexcept;

class CapacityPlane {
 public:
  struct Options {
    /// Little's-law audit: relative deviation that flags an interval, and
    /// the occupancy floor below which near-idle noise never flags.
    double little_tolerance = 0.15;
    double little_min_occupancy = 0.5;
    /// An interval is "idle" (no binding resource) when every candidate's
    /// busy fraction is below this floor.
    double idle_floor = 0.05;
    /// Headroom estimates only use intervals where the binding resource's
    /// busy fraction is inside [min, max]: below, λ/u extrapolates noise;
    /// above, admission control has already clipped λ.
    double headroom_min_util = 0.2;
    double headroom_max_util = 0.98;
    /// Instrument the arrival rate λ is differenced from.
    std::string demand_counter = "serving_requests_submitted_total";
  };

  explicit CapacityPlane(metrics::Registry& registry) : CapacityPlane(registry, Options{}) {}
  CapacityPlane(metrics::Registry& registry, Options opts);

  /// Rides the recorder's cadence. The plane must outlive the recorder's
  /// sampling window.
  void attach(metrics::FlightRecorder& recorder);

  /// Observes one tick (normally invoked by the recorder listener; public so
  /// tests can drive ticks directly).
  void observe(sim::Time now, std::uint64_t tick);

  /// No binding resource cleared the idle floor this interval.
  static constexpr std::size_t kIdle = static_cast<std::size_t>(-1);

  // --- timelines -------------------------------------------------------------

  [[nodiscard]] const std::vector<ResourceTimeline>& resources() const noexcept {
    return resources_;
  }
  /// Completed intervals observed (== length of every timeline vector).
  [[nodiscard]] std::size_t intervals() const noexcept { return binding_.size(); }

  // --- bottleneck attribution ------------------------------------------------

  /// Per-interval binding resource (index into resources(), or kIdle).
  [[nodiscard]] const std::vector<std::size_t>& binding() const noexcept { return binding_; }
  /// Consecutive same-binding intervals merged into segments.
  [[nodiscard]] std::vector<BindingSegment> segments() const;
  /// Resource binding the most non-idle intervals (kIdle when all idle);
  /// ties break toward the lower resource index (deterministic).
  [[nodiscard]] std::size_t dominant_resource() const;
  /// Stage taxonomy verdict for the dominant resource (cross-check target
  /// for trace::extract_critical_paths by_name shares); kIngest when idle.
  [[nodiscard]] metrics::Stage dominant_stage() const;

  // --- Little's-law audit ----------------------------------------------------

  [[nodiscard]] const std::vector<LittleSample>& little() const noexcept { return little_; }
  /// Interval indices where the audit flagged a deviation, ascending.
  [[nodiscard]] std::vector<std::size_t> violation_intervals() const;
  [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }

  // --- headroom --------------------------------------------------------------

  /// Median λ/u_binding over the usable intervals: the estimated maximum
  /// sustainable request rate at the observed mix. 0 when no interval
  /// qualified (idle or saturated run).
  [[nodiscard]] double sustainable_rps() const;
  /// Per-interval arrival rate λ (Δ demand counter / dt).
  [[nodiscard]] const std::vector<double>& demand_rps() const noexcept { return lambda_; }

  // --- export ----------------------------------------------------------------

  /// Deterministic snapshot for the telemetry exporter's "capacity" section.
  [[nodiscard]] metrics::CapacitySnapshot snapshot() const;

  /// Wall-clock seconds spent in observe() (self-overhead; excluded from
  /// deterministic exports).
  [[nodiscard]] double self_seconds() const noexcept { return self_time_.value(); }

 private:
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  /// Incremental registry scan (instruments only append; indices are
  /// stable): groups hw_resource_* instruments by (device, engine) and
  /// resolves the serving-side audit counters.
  void scan_new_instruments(std::size_t n);
  [[nodiscard]] std::size_t resource_slot(const std::string& device, const std::string& engine);

  struct ResourceState {
    std::size_t busy_idx = kNoIndex;      ///< hw_resource_busy_seconds_total
    std::size_t queue_idx = kNoIndex;     ///< hw_resource_queue_seconds_total
    std::size_t capacity_idx = kNoIndex;  ///< hw_resource_capacity
    double prev_busy = 0.0;
    double prev_queue = 0.0;
    bool have_prev = false;
  };

  metrics::Registry& registry_;
  Options opts_;

  std::vector<ResourceTimeline> resources_;
  std::vector<ResourceState> states_;  ///< aligned with resources_
  std::size_t scanned_until_ = 0;

  std::size_t demand_idx_ = kNoIndex;
  std::size_t occ_idx_ = kNoIndex;  ///< serving_in_flight_seconds_total
  std::size_t lat_idx_ = kNoIndex;  ///< serving_latency_seconds_total
  double prev_demand_ = 0.0;
  double prev_occ_ = 0.0;
  double prev_lat_ = 0.0;

  bool have_prev_tick_ = false;
  sim::Time prev_tick_time_ = 0;
  double period_s_ = 0.0;  ///< recorder cadence (set by attach)

  std::vector<std::size_t> binding_;  ///< per interval
  std::vector<double> lambda_;        ///< per interval
  std::vector<LittleSample> little_;  ///< per interval
  std::uint64_t violations_ = 0;

  metrics::Counter violations_m_;  ///< obs_capacity_little_violations_total
  metrics::Counter self_time_;     ///< wall-clock, excluded from exports
};

}  // namespace serve::obs
