#include "obs/capacity_plane.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace serve::obs {

metrics::Stage stage_for_resource(std::string_view device, std::string_view engine) noexcept {
  using metrics::Stage;
  if (engine == "preproc_workers" || engine == "preproc") return Stage::kPreprocess;
  if (engine == "compute") return Stage::kInference;
  if (engine == "pcie" || engine == "copy_h2d" || engine == "copy_d2h") return Stage::kTransfer;
  if (device == "broker" || engine == "io") return Stage::kBroker;
  return Stage::kIngest;  // host cores & anything unknown: web-stack work
}

CapacityPlane::CapacityPlane(metrics::Registry& registry, Options opts)
    : registry_(registry), opts_(opts) {
  violations_m_ = registry_.counter("obs_capacity_little_violations_total");
  self_time_ = registry_.wall_clock_counter("obs_capacity_plane_self_seconds_total");
}

void CapacityPlane::attach(metrics::FlightRecorder& recorder) {
  period_s_ = sim::to_seconds(recorder.period());
  recorder.add_tick_listener(
      [this](sim::Time now, std::uint64_t tick) { observe(now, tick); });
}

std::size_t CapacityPlane::resource_slot(const std::string& device, const std::string& engine) {
  for (std::size_t i = 0; i < resources_.size(); ++i) {
    if (resources_[i].device == device && resources_[i].engine == engine) return i;
  }
  ResourceTimeline tl;
  tl.device = device;
  tl.engine = engine;
  // Back-fill intervals observed before this resource registered: absent
  // means "not yet modeled", which for attribution equals idle.
  tl.busy_frac.assign(binding_.size(), 0.0);
  tl.queue_mean.assign(binding_.size(), 0.0);
  resources_.push_back(std::move(tl));
  states_.emplace_back();
  return resources_.size() - 1;
}

void CapacityPlane::scan_new_instruments(std::size_t n) {
  for (std::size_t i = scanned_until_; i < n; ++i) {
    const auto info = registry_.info(i);
    if (info.wall_clock) continue;
    const std::string& name = info.name;
    const bool is_busy = name == "hw_resource_busy_seconds_total";
    const bool is_queue = name == "hw_resource_queue_seconds_total";
    const bool is_cap = name == "hw_resource_capacity";
    if (is_busy || is_queue || is_cap) {
      std::string device, engine;
      for (const auto& [k, v] : info.labels) {
        if (k == "device") device = v;
        else if (k == "engine") engine = v;
      }
      const std::size_t slot = resource_slot(device, engine);
      if (is_busy) states_[slot].busy_idx = i;
      else if (is_queue) states_[slot].queue_idx = i;
      else states_[slot].capacity_idx = i;
      continue;
    }
    if (info.labels.empty()) {
      if (name == opts_.demand_counter) demand_idx_ = i;
      else if (name == "serving_in_flight_seconds_total") occ_idx_ = i;
      else if (name == "serving_latency_seconds_total") lat_idx_ = i;
    }
  }
  scanned_until_ = n;
}

void CapacityPlane::observe(sim::Time now, std::uint64_t /*tick*/) {
  const auto t0 = std::chrono::steady_clock::now();
  scan_new_instruments(registry_.instrument_count());

  if (!have_prev_tick_) {
    // Baseline tick: record current counter values, no interval yet.
    for (auto& st : states_) {
      if (st.busy_idx == kNoIndex) continue;
      st.prev_busy = registry_.current_value(st.busy_idx);
      st.prev_queue = st.queue_idx != kNoIndex ? registry_.current_value(st.queue_idx) : 0.0;
      st.have_prev = true;
    }
    if (demand_idx_ != kNoIndex) prev_demand_ = registry_.current_value(demand_idx_);
    if (occ_idx_ != kNoIndex) prev_occ_ = registry_.current_value(occ_idx_);
    if (lat_idx_ != kNoIndex) prev_lat_ = registry_.current_value(lat_idx_);
    prev_tick_time_ = now;
    have_prev_tick_ = true;
    const std::chrono::duration<double> dt0 = std::chrono::steady_clock::now() - t0;
    self_time_.inc(dt0.count());
    return;
  }

  const double dt_s = sim::to_seconds(now - prev_tick_time_);
  prev_tick_time_ = now;
  if (dt_s <= 0.0) {
    const std::chrono::duration<double> dt0 = std::chrono::steady_clock::now() - t0;
    self_time_.inc(dt0.count());
    return;
  }

  // Per-resource interval deltas. A resource whose instruments appeared this
  // tick establishes its baseline now and contributes 0 for this interval.
  std::size_t best = kIdle;
  double best_frac = opts_.idle_floor;
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    ResourceState& st = states_[r];
    double frac = 0.0, qmean = 0.0;
    if (st.busy_idx != kNoIndex) {
      const double busy = registry_.current_value(st.busy_idx);
      const double queue =
          st.queue_idx != kNoIndex ? registry_.current_value(st.queue_idx) : 0.0;
      const double cap = st.capacity_idx != kNoIndex
                             ? std::max(1.0, registry_.current_value(st.capacity_idx))
                             : 1.0;
      if (st.have_prev) {
        frac = std::clamp((busy - st.prev_busy) / (dt_s * cap), 0.0, 1.0);
        qmean = std::max(0.0, (queue - st.prev_queue) / dt_s);
      }
      st.prev_busy = busy;
      st.prev_queue = queue;
      st.have_prev = true;
      resources_[r].capacity = cap;
    }
    resources_[r].busy_frac.push_back(frac);
    resources_[r].queue_mean.push_back(qmean);
    // Argmax with strict > : ties (and everything under the floor) resolve
    // toward the earlier registration — deterministic by construction.
    if (frac > best_frac) {
      best_frac = frac;
      best = r;
    }
  }
  binding_.push_back(best);

  // Demand rate λ for the headroom estimator.
  double lambda = 0.0;
  if (demand_idx_ != kNoIndex) {
    const double d = registry_.current_value(demand_idx_);
    lambda = std::max(0.0, (d - prev_demand_) / dt_s);
    prev_demand_ = d;
  }
  lambda_.push_back(lambda);

  // Little's-law audit sample.
  LittleSample ls;
  if (occ_idx_ != kNoIndex && lat_idx_ != kNoIndex) {
    const double occ = registry_.current_value(occ_idx_);
    const double lat = registry_.current_value(lat_idx_);
    ls.l = (occ - prev_occ_) / dt_s;
    ls.lambda_w = (lat - prev_lat_) / dt_s;
    prev_occ_ = occ;
    prev_lat_ = lat;
    const double hi = std::max(ls.l, ls.lambda_w);
    if (hi >= opts_.little_min_occupancy) {
      ls.deviation = std::abs(ls.l - ls.lambda_w) / std::max(hi, 1e-12);
      ls.violated = ls.deviation > opts_.little_tolerance;
    }
  }
  if (ls.violated) {
    ++violations_;
    violations_m_.inc();
  }
  little_.push_back(ls);

  const std::chrono::duration<double> dt0 = std::chrono::steady_clock::now() - t0;
  self_time_.inc(dt0.count());
}

std::vector<BindingSegment> CapacityPlane::segments() const {
  std::vector<BindingSegment> out;
  for (std::size_t i = 0; i < binding_.size(); ++i) {
    if (!out.empty() && out.back().resource == binding_[i]) {
      out.back().end = i + 1;
    } else {
      out.push_back(BindingSegment{i, i + 1, binding_[i]});
    }
  }
  return out;
}

std::size_t CapacityPlane::dominant_resource() const {
  std::vector<std::size_t> counts(resources_.size(), 0);
  for (const std::size_t b : binding_) {
    if (b != kIdle) ++counts[b];
  }
  std::size_t best = kIdle, best_count = 0;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    if (counts[r] > best_count) {
      best_count = counts[r];
      best = r;
    }
  }
  return best;
}

metrics::Stage CapacityPlane::dominant_stage() const {
  const std::size_t r = dominant_resource();
  if (r == kIdle) return metrics::Stage::kIngest;
  return stage_for_resource(resources_[r].device, resources_[r].engine);
}

std::vector<std::size_t> CapacityPlane::violation_intervals() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < little_.size(); ++i) {
    if (little_[i].violated) out.push_back(i);
  }
  return out;
}

double CapacityPlane::sustainable_rps() const {
  std::vector<double> estimates;
  for (std::size_t i = 0; i < binding_.size(); ++i) {
    const std::size_t b = binding_[i];
    if (b == kIdle || i >= lambda_.size()) continue;
    const double u = resources_[b].busy_frac[i];
    if (u < opts_.headroom_min_util || u > opts_.headroom_max_util) continue;
    if (lambda_[i] <= 0.0) continue;
    estimates.push_back(lambda_[i] / u);
  }
  if (estimates.empty()) return 0.0;
  // Deterministic median (lower-of-two for even counts): robust against the
  // warmup and drain intervals that an average would let skew the knee.
  std::sort(estimates.begin(), estimates.end());
  return estimates[(estimates.size() - 1) / 2];
}

metrics::CapacitySnapshot CapacityPlane::snapshot() const {
  metrics::CapacitySnapshot snap;
  snap.period_s = period_s_;
  snap.resources.reserve(resources_.size());
  for (const auto& r : resources_) {
    metrics::CapacitySnapshot::Resource res;
    res.device = r.device;
    res.engine = r.engine;
    res.capacity = r.capacity;
    res.busy_frac = r.busy_frac;
    res.queue_mean = r.queue_mean;
    snap.resources.push_back(std::move(res));
  }
  for (const auto& seg : segments()) {
    metrics::CapacitySnapshot::Segment s;
    s.begin = seg.begin;
    s.end = seg.end;
    s.resource = seg.resource == kIdle ? "idle" : resources_[seg.resource].label();
    snap.segments.push_back(std::move(s));
  }
  snap.little_l.reserve(little_.size());
  snap.little_lambda_w.reserve(little_.size());
  for (const auto& ls : little_) {
    snap.little_l.push_back(ls.l);
    snap.little_lambda_w.push_back(ls.lambda_w);
  }
  for (const std::size_t v : violation_intervals()) snap.violation_intervals.push_back(v);
  snap.sustainable_rps = sustainable_rps();
  const std::size_t dom = dominant_resource();
  snap.binding = dom == kIdle ? "idle" : resources_[dom].label();
  snap.binding_stage = std::string(metrics::stage_name(dominant_stage()));
  return snap;
}

}  // namespace serve::obs
