// Deterministic SLO watch plane: declarative alert rules evaluated on the
// flight-recorder cadence.
//
// The registry (PR 4) exports what happened and the tracer (PR 5) explains
// single requests, but nothing *watches* the running system. The AlertEngine
// closes that gap as a sensor layer: rules over registry instruments are
// evaluated at every FlightRecorder tick — exact virtual-time multiples on
// the simulation thread — so alerts fire and clear at deterministic
// sim-times and two same-seed runs produce byte-identical alert logs. That
// determinism is what makes alerting testable here and what the Packrat-style
// online reconfiguration controller (ROADMAP) needs as its input signal.
//
// Three rule families:
//
//   - ThresholdRule   gauge value or counter derivative (rate/s) vs a
//                     threshold, with hysteresis (separate clear level,
//                     consecutive-tick debounce). Aggregation: sum or max
//                     over the matched instruments, or per-instrument — the
//                     latter turns one rule into one alert instance per
//                     matched instrument (e.g. per-node fleet health).
//   - BurnRateRule    multi-window SLO burn rate over a latency histogram
//                     (Google SRE workbook style): the fraction of requests
//                     over the SLO in a short AND a long trailing window,
//                     both normalized by the error budget (1 - target), must
//                     exceed the threshold to fire. The short window makes
//                     detection fast; the long window keeps blips from
//                     paging.
//   - StallRule       a progress counter that stops advancing for N ticks
//                     while an optional arming gauge shows outstanding work —
//                     the "server is wedged, not idle" watchdog.
//
// On fire/resolve the engine appends to an in-memory deterministic log,
// emits a trace instant event on the "alerts" track, increments
// obs_alerts_{fired,resolved}_total{alert=...} counters, and records a
// labeled snapshot of the top contributing instruments in the log line. A
// firing alert can also flip a trace::TraceSampler into full sampling
// (triggered capture) for the alert window plus a hold-off, so the causal
// traces of the anomalous interval are captured wholesale.
//
// Self-cost is measured into a wall-clock counter
// (obs_alert_engine_self_seconds_total), excluded from deterministic exports
// like the recorder's own self-time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "metrics/flight_recorder.h"
#include "metrics/registry.h"
#include "sim/time.h"
#include "sim/trace.h"
#include "trace/span_context.h"

namespace serve::obs {

/// Threshold / derivative rule over counters and gauges.
struct ThresholdRule {
  std::string name;              ///< alert name, e.g. "queue-depth-high"
  std::string instrument;        ///< registry instrument name to watch
  metrics::Labels label_filter;  ///< subset match; empty matches all instances

  /// kValue watches the sampled value (gauges); kRate watches the per-second
  /// derivative between consecutive ticks (counters). The first tick after a
  /// rate rule sees an instrument establishes the baseline and cannot breach.
  enum class Signal : std::uint8_t { kValue, kRate };
  Signal signal = Signal::kValue;

  /// How multiple matched instruments combine: one aggregate alert over the
  /// sum or max, or an independent alert instance per instrument (the alert
  /// name then carries the instrument's labels, e.g. "node-unhealthy{node=1}").
  enum class Agg : std::uint8_t { kSum, kMax, kPerInstrument };
  Agg agg = Agg::kSum;

  // Exactly one direction must be set. Hysteresis: an above-rule clears only
  // when the signal drops to clear_below (defaults to the fire level); a
  // below-rule clears at clear_above.
  double fire_above = std::numeric_limits<double>::infinity();
  double fire_below = -std::numeric_limits<double>::infinity();
  double clear_below = std::numeric_limits<double>::quiet_NaN();
  double clear_above = std::numeric_limits<double>::quiet_NaN();

  int for_ticks = 1;        ///< consecutive breaching ticks before firing
  int clear_for_ticks = 1;  ///< consecutive clear ticks before resolving
};

/// Multi-window SLO burn-rate rule over a latency histogram.
struct BurnRateRule {
  std::string name;  ///< e.g. "slo-burn-rate"
  std::string histogram = "serving_request_latency_seconds";
  metrics::Labels label_filter;

  double slo_s = 0.25;     ///< latency objective (seconds)
  double target = 0.99;    ///< attainment objective (fraction <= slo_s)
  /// Burn = (observed error rate) / (error budget). 1.0 = burning exactly at
  /// budget; both windows must exceed this to fire.
  double burn_threshold = 4.0;
  int short_window_ticks = 5;
  int long_window_ticks = 30;
  int clear_for_ticks = 3;  ///< short-window burn below threshold this long
};

/// Little's-law audit: per-tick comparison of the two integral counters
///
///   L   = Δ(occupancy time integral) / dt     (time-average in-system count)
///   λ·W = Δ(completion-charged latency sum) / dt
///
/// Every completed request contributes its full latency to `latency_sum` at
/// its terminal instant and exactly that much area to `occupancy_integral`
/// spread over its lifetime — so in steady state the per-tick derivatives
/// agree and L ≈ λ·W holds tick by tick. The two split apart only while
/// backlog is growing (L > λ·W: area accrues now, charge lands later) or
/// draining (the reverse) — precisely the transients fault windows cause.
/// The audit therefore doubles as a conservation check on the telemetry
/// itself *and* a backlog-transient detector.
struct LittleLawRule {
  std::string name = "littles-law";
  /// Counter: time integral of in-system requests (value-seconds).
  std::string occupancy_integral = "serving_in_flight_seconds_total";
  /// Counter: sum of request latencies charged at completion (seconds).
  std::string latency_sum = "serving_latency_seconds_total";
  metrics::Labels label_filter;  ///< applied to both instruments
  double tolerance = 0.15;       ///< relative |L - λW| / max(L, λW) that breaches
  /// Near-idle ticks (both sides below this many requests) never breach:
  /// the relative error of ~0 against ~0 is noise, not signal.
  double min_occupancy = 0.5;
  int for_ticks = 2;
  int clear_for_ticks = 2;
};

/// Progress watchdog: fires when `progress` stops advancing while work is
/// outstanding.
struct StallRule {
  std::string name;         ///< e.g. "progress-stall"
  std::string progress;     ///< counter that must keep advancing
  std::string armed_gauge;  ///< only watch while this gauge > armed_above
  double armed_above = 0.0;
  int for_ticks = 5;
  int clear_for_ticks = 1;
};

/// One fire/resolve transition, in evaluation order.
struct AlertEvent {
  sim::Time t = 0;
  std::string alert;   ///< instance name (rule name + labels when per-instrument)
  bool firing = false; ///< true = FIRING, false = RESOLVED
  double value = 0.0;  ///< signal value at the transition
  double threshold = 0.0;
  std::string detail;  ///< top contributing instruments / window breakdown
};

class AlertEngine {
 public:
  explicit AlertEngine(metrics::Registry& registry);

  // Rule registration (before or after attach; instruments may register
  // later and join evaluation when they appear).
  void add_threshold(ThresholdRule rule);
  void add_burn_rate(BurnRateRule rule);
  void add_stall(StallRule rule);
  void add_littles_law(LittleLawRule rule);

  /// Rides the recorder's cadence: registers a tick listener that calls
  /// evaluate() after every sample. The engine must outlive the recorder's
  /// sampling window.
  void attach(metrics::FlightRecorder& recorder);

  /// Alert transitions also become instant events on the "alerts" track.
  void set_trace(sim::TraceRecorder* trace) noexcept { trace_ = trace; }

  /// Triggered capture: while any alert is firing (plus `hold_ticks` after
  /// the last one resolves) the sampler is forced into full sampling.
  void set_triggered_sampler(trace::TraceSampler* sampler, int hold_ticks = 5);
  /// Drops the sampler binding (the runner calls this before the sampler's
  /// owner is destroyed).
  void release_triggered_sampler() noexcept;

  /// Evaluates every rule against the current registry state. Normally
  /// invoked by the recorder listener; public so tests can drive ticks
  /// directly.
  void evaluate(sim::Time now, std::uint64_t tick);

  [[nodiscard]] const std::vector<AlertEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t active_alerts() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t fired_total() const noexcept { return fired_total_; }
  /// True when any event (past or present) fired under this instance name.
  [[nodiscard]] bool ever_fired(const std::string& alert) const;
  /// Ticks spent with the sampler forced (triggered-capture window length).
  [[nodiscard]] std::uint64_t capture_ticks() const noexcept { return capture_ticks_; }

  /// Deterministic text log, one line per transition:
  ///   t=<s> FIRING <alert> value=<v> threshold=<t> <detail>
  /// Same seed, same rules => byte-identical text.
  void write_log(std::ostream& out) const;
  [[nodiscard]] std::string log_text() const;

  /// Wall-clock seconds spent in evaluate() (self-overhead; excluded from
  /// deterministic exports).
  [[nodiscard]] double self_seconds() const noexcept { return self_time_.value(); }

 private:
  // Shared fire/clear hysteresis state machine.
  struct AlertState {
    bool firing = false;
    int breach_ticks = 0;
    int clear_ticks = 0;
  };

  struct ThresholdState {
    ThresholdRule rule;
    metrics::Counter fired;     ///< obs_alerts_fired_total{alert=...}
    metrics::Counter resolved;  ///< obs_alerts_resolved_total{alert=...}
    AlertState agg_state;  ///< kSum / kMax
    // Per matched instrument (registry index): alert state (kPerInstrument)
    // and previous sample for kRate. Indexed sparsely via parallel vectors
    // kept in registry order so evaluation order is deterministic.
    std::vector<std::size_t> matched;       ///< registry indices
    std::vector<AlertState> per_state;      ///< aligned with matched
    std::vector<double> prev_value;         ///< aligned with matched
    std::vector<bool> have_prev;            ///< aligned with matched
    std::size_t scanned_until = 0;          ///< registry indices already classified
  };

  struct BurnWindowSample {
    std::uint64_t count = 0;  ///< cumulative histogram count at this tick
    double bad = 0.0;         ///< cumulative samples above slo (interpolated)
  };

  struct BurnState {
    BurnRateRule rule;
    metrics::Counter fired;
    metrics::Counter resolved;
    AlertState state;
    std::vector<std::size_t> matched;
    std::size_t scanned_until = 0;
    std::deque<BurnWindowSample> window;  ///< trailing long_window_ticks + 1
  };

  /// "Instrument not registered (yet)" sentinel for cached registry indices.
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  struct StallState {
    StallRule rule;
    metrics::Counter fired;
    metrics::Counter resolved;
    AlertState state;
    double prev_progress = 0.0;
    bool have_prev = false;
    int stalled_ticks = 0;
    // Cached registry indices (resolved incrementally — instruments may
    // register after the rule): a by-name find() per tick would re-scan and
    // snapshot-copy; indices are stable, so resolve once and read cheaply.
    std::size_t progress_idx = kNoIndex;
    std::size_t armed_idx = kNoIndex;
    std::size_t scanned_until = 0;
  };

  struct LittleState {
    LittleLawRule rule;
    metrics::Counter fired;
    metrics::Counter resolved;
    /// obs_little_law_deviation_ticks_total{alert=...}: every breaching tick,
    /// independent of the hysteresis machine — the audit's raw signal.
    metrics::Counter deviation_ticks;
    AlertState state;
    std::vector<std::size_t> occ_matched;  ///< occupancy-integral instruments
    std::vector<std::size_t> lat_matched;  ///< latency-sum instruments
    double prev_occ = 0.0;
    double prev_lat = 0.0;
    bool have_prev = false;
    std::size_t scanned_until = 0;
  };

  // `n` is the registry's instrument count, read once per tick: scans are
  // incremental (instruments only append) and this path runs per tick.
  void scan_new_instruments(ThresholdState& st, std::size_t n);
  void scan_new_instruments(BurnState& st, std::size_t n);
  void scan_new_instruments(StallState& st, std::size_t n);
  void scan_new_instruments(LittleState& st, std::size_t n);
  void evaluate_threshold(ThresholdState& st, sim::Time now, double dt_s, std::size_t n);
  void evaluate_burn(BurnState& st, sim::Time now, std::size_t n);
  void evaluate_stall(StallState& st, sim::Time now, std::size_t n);
  void evaluate_little(LittleState& st, sim::Time now, double dt_s, std::size_t n);

  /// Advances the hysteresis state machine; returns +1 on fire, -1 on
  /// resolve, 0 otherwise.
  static int step_state(AlertState& state, bool breach, bool clear_ok, int for_ticks,
                        int clear_for_ticks);

  void transition(sim::Time now, const std::string& alert, bool firing, double value,
                  double threshold, std::string detail, metrics::Counter& fired,
                  metrics::Counter& resolved);
  [[nodiscard]] bool matches(const metrics::Labels& labels,
                             const metrics::Labels& filter) const;
  [[nodiscard]] std::string instance_name(const ThresholdRule& rule, std::size_t reg_index) const;
  /// "top: a{x=1}=3 b=2" — top matched instruments by value, for the log line.
  [[nodiscard]] std::string top_contributors(const std::vector<std::size_t>& matched,
                                             std::size_t limit = 3) const;

  metrics::Registry& registry_;
  sim::TraceRecorder* trace_ = nullptr;
  trace::TraceSampler* sampler_ = nullptr;
  int capture_hold_ticks_ = 5;
  std::uint64_t last_active_tick_ = 0;
  bool capture_on_ = false;
  std::uint64_t capture_ticks_ = 0;

  std::vector<ThresholdState> thresholds_;
  std::vector<BurnState> burns_;
  std::vector<StallState> stalls_;
  std::vector<LittleState> littles_;

  std::vector<AlertEvent> events_;
  std::size_t active_ = 0;
  std::uint64_t fired_total_ = 0;

  bool have_prev_tick_ = false;
  sim::Time prev_tick_time_ = 0;

  metrics::Gauge active_gauge_;
  metrics::Counter self_time_;  ///< wall-clock, excluded from exports
};

}  // namespace serve::obs
