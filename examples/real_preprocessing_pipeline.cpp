// Example: the paper's preprocessing pipeline on REAL data — no simulation.
//
// Builds a corpus of actual JPEGs (encoded by the from-scratch codec),
// then runs a two-thread producer/consumer system through the real
// in-process broker: the producer publishes compressed images, the consumer
// decodes, resizes to 224x224 and normalizes — exactly the stages whose
// server cost the paper quantifies — and reports measured wall-clock
// MPix/s and per-image latency for each stage on this machine.
//
//   $ ./real_preprocessing_pipeline [image_count]
#include <chrono>
#include <iostream>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "broker/in_process_broker.h"
#include "codec/jpeg.h"
#include "codec/transform.h"
#include "metrics/stat_accumulator.h"
#include "metrics/table.h"
#include "workload/corpus.h"

using namespace serve;

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 24;
  std::printf("Building a real JPEG corpus (%d medium images, from-scratch encoder)...\n", count);
  const auto corpus = workload::make_corpus(hw::kMediumImage, count, 2026);
  std::printf("  mean compressed size: %.0f kB (paper's medium image: 121 kB)\n\n",
              [&] {
                double s = 0;
                for (const auto& e : corpus) s += static_cast<double>(e.jpeg.size());
                return s / count / 1024.0;
              }());

  // Producer -> broker -> consumer, real threads, real decode.
  broker::InProcessBroker<const workload::CorpusEntry*> topic{8};
  metrics::StatAccumulator decode_ms, resize_ms, normalize_ms;

  std::thread consumer{[&] {
    while (auto msg = topic.consume()) {
      const auto t = workload::time_real_preprocess(**msg, 224);
      decode_ms.add(t.decode_s * 1e3);
      resize_ms.add(t.resize_s * 1e3);
      normalize_ms.add(t.normalize_s * 1e3);
    }
  }};
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& entry : corpus) topic.publish(&entry);
  topic.close();
  consumer.join();
  const double wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  metrics::Table table({"stage", "mean_ms", "min_ms", "max_ms", "share_%"});
  const double total = decode_ms.mean() + resize_ms.mean() + normalize_ms.mean();
  table.add_row({std::string("jpeg decode"), decode_ms.mean(), decode_ms.min(), decode_ms.max(),
                 100 * decode_ms.mean() / total});
  table.add_row({std::string("resize->224"), resize_ms.mean(), resize_ms.min(), resize_ms.max(),
                 100 * resize_ms.mean() / total});
  table.add_row({std::string("normalize"), normalize_ms.mean(), normalize_ms.min(),
                 normalize_ms.max(), 100 * normalize_ms.mean() / total});
  table.print(std::cout);

  const double mpix = static_cast<double>(hw::kMediumImage.pixels()) * count / 1e6;
  std::printf("\nEnd-to-end: %d images in %.2f s through the real broker (%.1f MPix/s)\n", count,
              wall_s, mpix / wall_s);
  std::printf(
      "Decode dominates preprocessing — the same ordering the calibrated\n"
      "simulator uses for the paper's testbed (see src/hw/calibration.h).\n");
  return 0;
}
