// Example: automated server-configuration search + pipeline visualization.
//
// Reproduces the paper's Section 2.3 workflow as a tool: given a model and
// an SLO, grid-search the deployment knobs (preprocessing device, batch
// limit, concurrency, CPU worker pool), print the search trace, and dump a
// chrome://tracing JSON of the winning configuration's device occupancy.
//
//   $ ./tune_deployment [model] [p99_slo_ms] [trace.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/autotuner.h"
#include "metrics/table.h"
#include "models/model_zoo.h"

using namespace serve;

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "vit-base";
  const double slo_ms = argc > 2 ? std::atof(argv[2]) : 200.0;
  const std::string trace_path = argc > 3 ? argv[3] : "tuned_deployment_trace.json";

  core::ExperimentSpec base;
  base.server.model = models::find_model(model_name);
  base.measure = sim::seconds(5.0);

  core::TuneSpace space;
  space.max_batches = {16, 64, 128};
  space.concurrencies = {64, 256, 512};
  space.preproc_workers = {8, 24};
  core::TuneObjective objective;
  objective.p99_slo_s = slo_ms / 1e3;

  std::printf("Tuning %s for p99 <= %.0f ms (%zu configurations)...\n\n", model_name.c_str(),
              slo_ms, space.max_batches.size() * space.concurrencies.size() * 3);
  const auto report = core::tune_server(base, space, objective);

  metrics::Table table(
      {"preproc", "workers", "max_batch", "concurrency", "tput_img_s", "p99_ms", "feasible"});
  for (const auto& p : report.trace) {
    table.add_row({std::string(preproc_device_name(p.spec.server.preproc)),
                   static_cast<std::int64_t>(p.spec.calib.cpu.preproc_workers),
                   static_cast<std::int64_t>(p.spec.server.max_batch),
                   static_cast<std::int64_t>(p.spec.concurrency), p.result.throughput_rps,
                   p.result.p99_latency_s * 1e3, std::string(p.feasible ? "yes" : "no")});
  }
  table.print(std::cout);

  if (!report.found_feasible()) {
    std::printf("\nNo configuration met the SLO — relax it or add GPUs.\n");
    return 1;
  }
  const auto& best = report.best;
  std::printf("\nBest: %s preprocessing, max_batch %d, concurrency %d -> %.0f img/s @ p99 %.1f ms\n",
              std::string(preproc_device_name(best.spec.server.preproc)).c_str(),
              best.spec.server.max_batch, best.spec.concurrency, best.result.throughput_rps,
              best.result.p99_latency_s * 1e3);

  // Re-run the winner with tracing enabled and dump the timeline.
  sim::TraceRecorder trace;
  core::ExperimentSpec traced = best.spec;
  traced.measure = sim::seconds(0.25);  // a short window keeps the JSON readable
  traced.trace = &trace;
  (void)core::run_experiment(traced);
  std::ofstream out{trace_path};
  trace.write_chrome_json(out);
  std::printf("Device-occupancy timeline written to %s (open in chrome://tracing)\n",
              trace_path.c_str());
  return 0;
}
