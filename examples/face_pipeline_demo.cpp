// Example: choosing a broker for a multi-DNN pipeline (paper Section 4.7).
//
// A video-analytics service runs face detection (Faster R-CNN) and face
// identification (FaceNet) with a rate mismatch: one frame fans out to many
// identification calls. This example answers the deployment question the
// paper poses — Kafka, Redis, or a fused process? — for *your* expected
// faces-per-frame, including stochastic (Poisson) face counts.
//
//   $ ./face_pipeline_demo [mean_faces_per_frame]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/face_pipeline.h"
#include "metrics/table.h"

using namespace serve;

int main(int argc, char** argv) {
  const int mean_faces = argc > 1 ? std::atoi(argv[1]) : 6;
  if (mean_faces < 1) {
    std::fprintf(stderr, "mean faces/frame must be >= 1\n");
    return 1;
  }
  std::printf("Broker selection for detection->identification, Poisson(%d) faces/frame\n\n",
              mean_faces);

  metrics::Table table({"deployment", "frames_per_s", "faces_per_s", "mean_latency_ms",
                        "p99_latency_ms", "broker_share_%"});
  double best_fps = 0;
  core::BrokerKind best = core::BrokerKind::kFused;
  for (auto kind :
       {core::BrokerKind::kKafka, core::BrokerKind::kRedis, core::BrokerKind::kFused}) {
    core::FacePipelineSpec spec;
    spec.broker = kind;
    spec.faces_per_frame = mean_faces;
    spec.stochastic_faces = true;  // real frames vary
    spec.concurrency = 16;
    spec.measure = sim::seconds(20.0);
    const auto r = core::run_face_pipeline(spec);
    table.add_row({std::string(core::broker_kind_name(kind)), r.frames_per_s, r.faces_per_s,
                   r.mean_latency_s * 1e3, r.p99_latency_s * 1e3, 100 * r.broker_share()});
    if (r.frames_per_s > best_fps) {
      best_fps = r.frames_per_s;
      best = kind;
    }
  }
  table.print(std::cout);

  std::printf("\nRecommendation: %s (%.1f frames/s)\n",
              std::string(core::broker_kind_name(best)).c_str(), best_fps);
  std::printf(
      "Rule of thumb from the paper: fuse the stages below ~9 faces/frame,\n"
      "use an in-memory broker above; disk-backed brokers cost ~71%% of latency.\n");
  return 0;
}
