// Quickstart: stand up a throughput-optimized inference server on the
// simulated CPU+GPU node, drive it with closed-loop clients, and print the
// end-to-end latency breakdown — the measurement at the heart of the paper.
//
//   $ ./quickstart
#include <cstdio>

#include "core/experiment.h"
#include "models/model_zoo.h"

using namespace serve;

int main() {
  // 1. Describe the deployment: ViT-Base compiled with TensorRT, DALI-style
  //    GPU preprocessing, Triton-style dynamic batching.
  core::ExperimentSpec spec;
  spec.server.model = models::vit_base();
  spec.server.backend = models::Backend::kTensorRT;
  spec.server.preproc = serving::PreprocDevice::kGpu;
  spec.server.dynamic_batching = true;

  // 2. Describe the workload: 256 concurrent clients sending the paper's
  //    "medium" ImageNet image (500x375, 121 kB JPEG).
  spec.concurrency = 256;
  spec.image = hw::kMediumImage;
  spec.warmup = sim::seconds(2.0);
  spec.measure = sim::seconds(10.0);

  // 3. Run (in virtual time — finishes in well under a second of wall time).
  const core::ExperimentResult r = core::run_experiment(spec);

  std::printf("ViT-Base serving, GPU preprocessing, 256 concurrent clients\n");
  std::printf("  throughput    : %8.1f img/s\n", r.throughput_rps);
  std::printf("  mean latency  : %8.2f ms\n", r.mean_latency_s * 1e3);
  std::printf("  p99 latency   : %8.2f ms\n", r.p99_latency_s * 1e3);
  std::printf("  mean batch    : %8.1f\n", r.mean_batch);
  std::printf("  energy/image  : %8.1f mJ (CPU %.1f + GPU %.1f)\n",
              (r.cpu_joules_per_image() + r.gpu_joules_per_image()) * 1e3,
              r.cpu_joules_per_image() * 1e3, r.gpu_joules_per_image() * 1e3);
  std::printf("\nWhere does a request's time go?\n");
  for (std::size_t i = 0; i < metrics::kStageCount; ++i) {
    const auto stage = static_cast<metrics::Stage>(i);
    if (r.breakdown.mean(stage) <= 0.0) continue;
    std::printf("  %-12s %6.2f ms  (%5.1f%%)\n", std::string(metrics::stage_name(stage)).c_str(),
                r.breakdown.mean(stage) * 1e3, 100.0 * r.stage_share(stage));
  }
  std::printf("\nNote how little of the request is DNN inference — the paper's headline.\n");
  return 0;
}
