// Example: capacity-planning a vision classification service.
//
// The scenario from the paper's introduction: a social-media platform must
// classify a stream of user-uploaded photos (mixed sizes!) within a latency
// SLO. This example sweeps concurrency for two candidate deployments — CPU
// vs GPU preprocessing — and reports the highest throughput each sustains
// under a p99 SLO, plus the node count needed for a target aggregate load.
//
//   $ ./classification_service [target_img_per_s] [p99_slo_ms]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.h"
#include "metrics/table.h"
#include "models/model_zoo.h"
#include "serving/client.h"
#include "serving/server.h"
#include "workload/image_mixture.h"

using namespace serve;

namespace {

struct SweepPoint {
  int concurrency;
  double tput;
  double p99_ms;
};

/// Runs the mixed-size workload at one concurrency level. Uses the mixture
/// sampler directly as the client image source.
SweepPoint run_point(serving::PreprocDevice dev, int concurrency) {
  sim::Simulator sim;
  hw::Platform platform{sim, {}};
  serving::ServerConfig cfg;
  cfg.model = models::vit_base();
  cfg.preproc = dev;
  serving::InferenceServer server{platform, cfg};

  const auto mixture = workload::ImageMixture::imagenet_like();
  serving::ClosedLoopClients clients{
      server,
      {.concurrency = concurrency,
       .image_source = [mixture](sim::Rng& rng) { return mixture.sample(rng); },
       .seed = 99}};
  clients.start();
  sim.run_until(sim::seconds(2.0));
  server.stats().begin();
  sim.run_until(sim::seconds(10.0));
  SweepPoint point{concurrency, server.stats().throughput(),
                   server.stats().latency().p99() * 1e3};
  clients.stop();
  sim.run();
  server.shutdown();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const double target_load = argc > 1 ? std::atof(argv[1]) : 25000.0;  // img/s fleet-wide
  const double slo_ms = argc > 2 ? std::atof(argv[2]) : 150.0;

  std::printf("Capacity plan: ViT-Base classification, ImageNet-like size mix\n");
  std::printf("Fleet load %.0f img/s, p99 SLO %.0f ms\n\n", target_load, slo_ms);

  metrics::Table table({"preproc", "concurrency", "tput_img_s", "p99_ms", "meets_slo"});
  double best[2] = {0.0, 0.0};
  for (auto dev : {serving::PreprocDevice::kCpu, serving::PreprocDevice::kGpu}) {
    const int d = dev == serving::PreprocDevice::kCpu ? 0 : 1;
    for (int c : {16, 32, 64, 128, 256, 512}) {
      const auto p = run_point(dev, c);
      const bool ok = p.p99_ms <= slo_ms;
      if (ok) best[d] = std::max(best[d], p.tput);
      table.add_row({std::string(d == 0 ? "cpu" : "gpu"), static_cast<std::int64_t>(c), p.tput,
                     p.p99_ms, std::string(ok ? "yes" : "no")});
    }
  }
  table.print(std::cout);

  for (int d : {0, 1}) {
    const char* name = d == 0 ? "CPU" : "GPU";
    if (best[d] <= 0) {
      std::printf("\n%s preprocessing: no concurrency met the SLO\n", name);
      continue;
    }
    const int nodes = static_cast<int>(target_load / best[d]) + 1;
    std::printf("\n%s preprocessing: best SLO-compliant tput %.0f img/s -> %d nodes for %.0f img/s",
                name, best[d], nodes, target_load);
  }
  std::printf("\n\nGPU preprocessing typically needs fewer nodes — the Fig. 5 takeaway.\n");
  return 0;
}
