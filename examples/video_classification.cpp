// Example: video classification service design (the paper's Section 1
// motivating workload).
//
// "A video classification service receives the video in a compressed format
// like MPEG, decodes the video, samples a number of frames, then resizes
// and normalizes the resulting images into the format required by the DNN."
//
// This example answers the two deployment questions for that service: where
// to decode (CPU software vs the GPU's NVDEC engine), and how to sample
// (decode everything vs keyframe seek) — for SD/HD/4K clips.
//
//   $ ./video_classification [sampled_frames]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/video_pipeline.h"
#include "metrics/table.h"

using namespace serve;
using core::SamplingMode;
using core::VideoDecodeDevice;

int main(int argc, char** argv) {
  const int samples = argc > 1 ? std::atoi(argv[1]) : 10;
  std::printf("Video classification: 10 s clips, %d sampled frames, ViT-Base classifier\n\n",
              samples);

  metrics::Table table({"clip", "decode", "sampling", "clips_per_s", "mean_lat_ms",
                        "decode_share_%"});
  const std::pair<const char*, workload::VideoSpec> clips[] = {
      {"SD 360p", workload::kSdClip}, {"HD 720p", workload::kHdClip},
      {"4K 2160p", workload::k4kClip}};
  for (const auto& [name, clip_base] : clips) {
    for (auto dev : {VideoDecodeDevice::kCpu, VideoDecodeDevice::kNvdec}) {
      for (auto mode : {SamplingMode::kDecodeAll, SamplingMode::kKeyframeSeek}) {
        core::VideoPipelineSpec spec;
        spec.clip = clip_base;
        spec.clip.sampled_frames = samples;
        spec.decode = dev;
        spec.sampling = mode;
        spec.concurrency = 16;
        spec.measure = sim::seconds(15.0);
        const auto r = core::run_video_pipeline(spec);
        table.add_row({std::string(name), std::string(video_decode_device_name(dev)),
                       std::string(mode == SamplingMode::kDecodeAll ? "decode-all"
                                                                    : "keyframe-seek"),
                       r.clips_per_s, r.mean_latency_s * 1e3, 100 * r.decode_share()});
      }
    }
  }
  table.print(std::cout);

  std::printf(
      "\nTakeaways mirror the paper's still-image findings: the DNN is rarely\n"
      "the bottleneck — video decode placement and the sampling strategy\n"
      "dominate both throughput and latency, especially at 4K.\n");
  return 0;
}
